(* The zero-copy fingerprint kernel and the SoA visited stores it feeds:
   determinism, raw/hex codecs, hash distribution (full-word bucket hash,
   shard-key independence), arena growth, and Fp_store semantics. *)

open Sandtable

let case name f = Alcotest.test_case name `Quick f

let rand = Random.State.make [| 0x5a9d7ab1e |]
let random_value () =
  (Random.State.int rand 1_000_000,
   Random.State.bits rand,
   String.init (Random.State.int rand 24) (fun _ ->
       Char.chr (Random.State.int rand 256)))

let test_kernel_deterministic () =
  for _ = 1 to 200 do
    let v = random_value () in
    Alcotest.(check bool) "same value, same fingerprint" true
      (Fingerprint.equal (Fingerprint.of_state v) (Fingerprint.of_state v))
  done;
  (* the kernel must be a pure function of the bytes, not of arena history:
     interleave small and large values *)
  let big = String.make 100_000 'x' in
  let small = (1, 2) in
  let f1 = Fingerprint.of_state small in
  let (_ : Fingerprint.t) = Fingerprint.of_state big in
  Alcotest.(check bool) "stable across arena growth" true
    (Fingerprint.equal f1 (Fingerprint.of_state small))

let test_kernel_sensitivity () =
  (* every prefix length crosses the 7-byte stride and tail boundaries *)
  let base = String.init 64 (fun i -> Char.chr (i * 7 land 0xff)) in
  let fps =
    List.init 65 (fun n -> Fingerprint.of_state (String.sub base 0 n))
  in
  let distinct =
    List.sort_uniq Fingerprint.compare fps
  in
  Alcotest.(check int) "all lengths 0..64 distinct" 65 (List.length distinct);
  (* single byte flips *)
  let v = Bytes.of_string base in
  let f0 = Fingerprint.of_state (Bytes.to_string v) in
  for i = 0 to Bytes.length v - 1 do
    let c = Bytes.get v i in
    Bytes.set v i (Char.chr (Char.code c lxor 1));
    let f1 = Fingerprint.of_state (Bytes.to_string v) in
    Bytes.set v i c;
    Alcotest.(check bool)
      (Fmt.str "flip at byte %d changes fingerprint" i)
      false (Fingerprint.equal f0 f1)
  done

let test_raw_hex_roundtrip () =
  for _ = 1 to 1000 do
    let fp = Fingerprint.of_state (random_value ()) in
    let raw = Fingerprint.to_raw fp in
    Alcotest.(check int) "raw width" 16 (String.length raw);
    Alcotest.(check bool) "of_raw inverts to_raw" true
      (Fingerprint.equal fp (Fingerprint.of_raw raw));
    Alcotest.(check int) "hex width" 32 (String.length (Fingerprint.to_hex fp));
    let fp' = Fingerprint.of_parts ~hi:fp.Fingerprint.hi ~lo:fp.Fingerprint.lo in
    Alcotest.(check bool) "of_parts rebuilds" true (Fingerprint.equal fp fp')
  done;
  (* foreign 128-bit digests (legacy MD5 checkpoints): of_raw is total and
     idempotent after the first bit-63 masking *)
  for _ = 1 to 1000 do
    let s =
      String.init 16 (fun _ -> Char.chr (Random.State.int rand 256))
    in
    let fp = Fingerprint.of_raw s in
    Alcotest.(check bool) "masking is idempotent" true
      (Fingerprint.equal fp (Fingerprint.of_raw (Fingerprint.to_raw fp)))
  done

let test_cross_domain_stable () =
  (* the marshal arena is domain-local; the fingerprint must not be *)
  let v = random_value () in
  let here = Fingerprint.of_state v in
  let there = Domain.join (Domain.spawn (fun () -> Fingerprint.of_state v)) in
  Alcotest.(check bool) "same fingerprint from another domain" true
    (Fingerprint.equal here there)

let samples = 25_600

let histogram_check label buckets key =
  let counts = Array.make buckets 0 in
  for i = 0 to samples - 1 do
    let fp = Fingerprint.of_state (i, i * 31, "dist") in
    let k = key fp in
    counts.(k) <- counts.(k) + 1
  done;
  let mean = samples / buckets in
  Array.iteri
    (fun b c ->
      if c < mean / 2 || c > mean * 2 then
        Alcotest.failf "%s: bucket %d holds %d of %d (mean %d)" label b c
          samples mean)
    counts

let test_bucket_hash_distribution () =
  (* the bucket hash must spread in its low bits (open addressing probes
     with them) AND high bits (a widened hash that only mixed low bits
     would pass the first check) *)
  histogram_check "low 8 bits" 256 (fun fp ->
      Fingerprint.bucket_hash fp land 255);
  histogram_check "bits 40-47" 256 (fun fp ->
      (Fingerprint.bucket_hash fp lsr 40) land 255);
  Alcotest.(check bool) "non-negative" true
    (List.for_all
       (fun i -> Fingerprint.bucket_hash (Fingerprint.of_state i) >= 0)
       (List.init 1000 Fun.id))

let test_shard_key_independent () =
  histogram_check "shard key" 64 (fun fp -> Fingerprint.shard_key fp ~mask:63);
  (* within one shard, the bucket hash's low bits must still spread —
     otherwise per-shard tables would degenerate into probe chains *)
  let low_buckets = Hashtbl.create 64 in
  let n = ref 0 in
  let i = ref 0 in
  while !n < 400 do
    let fp = Fingerprint.of_state (!i, "pinned") in
    if Fingerprint.shard_key fp ~mask:63 = 0 then begin
      incr n;
      Hashtbl.replace low_buckets (Fingerprint.bucket_hash fp land 63) ()
    end;
    incr i
  done;
  Alcotest.(check bool)
    (Fmt.str "one shard's fps hit %d/64 low buckets"
       (Hashtbl.length low_buckets))
    true
    (Hashtbl.length low_buckets >= 48)

let test_marshalled_bytes_counts () =
  let b0 = Fingerprint.marshalled_bytes () in
  let (_ : Fingerprint.t) = Fingerprint.of_state (String.make 1000 'a') in
  let b1 = Fingerprint.marshalled_bytes () in
  Alcotest.(check bool) "counter advances by at least the payload" true
    (b1 - b0 >= 1000)

(* ---- Fp_store ---------------------------------------------------------- *)

let ev n = Trace.Timeout { node = n; kind = "t" }

let test_fp_store_basics () =
  let s = Fp_store.create ~capacity:16 () in
  let fps = Array.init 1000 (fun i -> Fingerprint.of_state (i, "store")) in
  Array.iteri
    (fun i fp ->
      let prov =
        if i = 0 then Fp_store.Proot 0 else Fp_store.Pstep (i - 1, ev (i mod 7))
      in
      match Fp_store.add s fp prov ~depth:(i mod 100) with
      | Fp_store.Fresh e -> Alcotest.(check int) "dense index" i e
      | Fp_store.Dup _ -> Alcotest.failf "fresh fingerprint %d reported dup" i)
    fps;
  Alcotest.(check int) "length" 1000 (Fp_store.length s);
  Alcotest.(check bool) "slots grew past initial capacity" true
    (Fp_store.capacity s >= 2048);
  Array.iteri
    (fun i fp ->
      (match Fp_store.find s fp with
      | Some e -> Alcotest.(check int) "find" i e
      | None -> Alcotest.failf "fingerprint %d lost" i);
      match Fp_store.add s fp (Fp_store.Proot 9) ~depth:0 with
      | Fp_store.Dup e ->
        Alcotest.(check int) "dup keeps index" i e;
        (* a duplicate insert must not disturb the stored entry *)
        Alcotest.(check int) "depth kept" (i mod 100) (Fp_store.depth s i)
      | Fp_store.Fresh _ -> Alcotest.fail "duplicate reported fresh")
    fps;
  (* provenance round-trips, with events interned structurally *)
  (match Fp_store.prov s 500 with
  | Fp_store.Pstep (p, e) ->
    Alcotest.(check int) "pred" 499 p;
    Alcotest.(check bool) "event" true (Trace.equal_event e (ev (500 mod 7)))
  | Fp_store.Proot _ -> Alcotest.fail "expected step");
  (match Fp_store.prov s 0 with
  | Fp_store.Proot 0 -> ()
  | _ -> Alcotest.fail "expected root 0");
  (* iteration is insertion order *)
  let seen = ref 0 in
  Fp_store.iter s (fun e fp _ _ ->
      Alcotest.(check int) "iter order" !seen e;
      Alcotest.(check bool) "iter fp" true (Fingerprint.equal fp fps.(e));
      incr seen);
  Alcotest.(check int) "iterated all" 1000 !seen;
  Alcotest.(check bool) "store_bytes accounted" true
    (Fp_store.store_bytes s
    >= (Fp_store.capacity s + (4 * Fp_store.length s)) * (Sys.word_size / 8))

let test_fp_store_pending () =
  let s = Fp_store.create () in
  let child = Fingerprint.of_state "child" in
  let parent = Fingerprint.of_state "parent" in
  (* child arrives first (checkpoints iterate in hash order, not
     topological order) *)
  let c =
    match Fp_store.add_pending_step s child (ev 1) ~depth:3 with
    | Fp_store.Fresh e -> e
    | Fp_store.Dup _ -> Alcotest.fail "fresh expected"
  in
  let p =
    match Fp_store.add s parent (Fp_store.Proot 0) ~depth:2 with
    | Fp_store.Fresh e -> e
    | Fp_store.Dup _ -> Alcotest.fail "fresh expected"
  in
  Fp_store.set_pred s c p;
  (match Fp_store.prov s c with
  | Fp_store.Pstep (pred, e) ->
    Alcotest.(check int) "patched pred" p pred;
    Alcotest.(check bool) "event kept" true (Trace.equal_event e (ev 1))
  | Fp_store.Proot _ -> Alcotest.fail "expected step");
  (* set_pred must refuse to clobber resolved provenance *)
  (match Fp_store.set_pred s p 0 with
  | () -> Alcotest.fail "set_pred on a resolved entry must raise"
  | exception Invalid_argument _ -> ());
  match Fp_store.add s (Fingerprint.of_state "deep") (Fp_store.Proot 0)
          ~depth:(1 lsl 20)
  with
  | _ -> Alcotest.fail "depth over 2^20 must raise"
  | exception Invalid_argument _ -> ()

let suite =
  ( "fingerprint",
    [ case "kernel deterministic" test_kernel_deterministic;
      case "kernel sensitivity" test_kernel_sensitivity;
      case "raw/hex round-trips" test_raw_hex_roundtrip;
      case "cross-domain stable" test_cross_domain_stable;
      case "bucket hash distribution" test_bucket_hash_distribution;
      case "shard key independent of bucket bits" test_shard_key_independent;
      case "marshalled-bytes counter" test_marshalled_bytes_counts;
      case "fp_store basics" test_fp_store_basics;
      case "fp_store pending provenance" test_fp_store_pending ] )
