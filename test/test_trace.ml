open Sandtable

let case name f = Alcotest.test_case name `Quick f

let sample : Trace.t =
  [ Trace.Timeout { node = 0; kind = "election" };
    Trace.Deliver { src = 0; dst = 1; index = 0; desc = "RV(t1,l0:0)" };
    Trace.Client { node = 0; op = "put:3" };
    Trace.Partition { group = [ 0; 2 ] };
    Trace.Crash { node = 1 };
    Trace.Restart { node = 1 };
    Trace.Heal;
    Trace.Drop { src = 1; dst = 2; index = 1 };
    Trace.Duplicate { src = 2; dst = 0; index = 0 } ]

let test_event_roundtrip () =
  List.iter
    (fun e ->
      match Trace.parse_event (Trace.serialize_event e) with
      | Ok e' ->
        Alcotest.(check bool)
          (Trace.serialize_event e) true (Trace.equal_event e e')
      | Error line -> Alcotest.failf "parse failed: %s" line)
    sample

let test_file_roundtrip () =
  let path = Filename.temp_file "sandtable" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path sample;
      match Trace.load path with
      | Ok events ->
        Alcotest.(check int) "length" (List.length sample) (List.length events);
        List.iter2
          (fun a b -> Alcotest.(check bool) "event" true (Trace.equal_event a b))
          sample events
      | Error line -> Alcotest.failf "load failed at %S" line)

let test_parse_garbage () =
  (match Trace.parse_event "frobnicate 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Trace.parse_event "timeout x election" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-integer node accepted"

let test_desc_with_spaces () =
  let e = Trace.Deliver { src = 0; dst = 1; index = 2; desc = "AE with spaces" } in
  match Trace.parse_event (Trace.serialize_event e) with
  | Ok (Trace.Deliver { desc; _ }) ->
    Alcotest.(check string) "desc preserved" "AE with spaces" desc
  | _ -> Alcotest.fail "roundtrip failed"

let test_equality_ignores_desc () =
  let a = Trace.Deliver { src = 0; dst = 1; index = 0; desc = "x" } in
  let b = Trace.Deliver { src = 0; dst = 1; index = 0; desc = "y" } in
  Alcotest.(check bool) "desc ignored" true (Trace.equal_event a b);
  let c = Trace.Deliver { src = 0; dst = 1; index = 1; desc = "x" } in
  Alcotest.(check bool) "index significant" false (Trace.equal_event a c)

let test_truncated_file () =
  let path = Filename.temp_file "sandtable" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save path sample;
      let ic = open_in_bin path in
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin path in
      output_string oc (String.sub raw 0 (String.length raw / 2));
      close_out oc;
      match Trace.load path with
      | Error m ->
        let contains s sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s
            && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool)
          (Fmt.str "%S names truncation" m)
          true (contains m "truncated")
      | Ok _ -> Alcotest.fail "truncated file accepted")

let test_legacy_format () =
  (* pre-binary trace files were one serialized event per line *)
  let path = Filename.temp_file "sandtable" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun e -> Printf.fprintf oc "%s\n" (Trace.serialize_event e))
        sample;
      close_out oc;
      match Trace.load path with
      | Ok events ->
        Alcotest.(check int) "length" (List.length sample) (List.length events);
        List.iter2
          (fun a b ->
            Alcotest.(check bool) "event" true (Trace.equal_event a b))
          sample events
      | Error line -> Alcotest.failf "legacy load failed at %S" line)

let test_save_atomic () =
  (* save must not leave temp files behind in the target directory *)
  let dir = Filename.temp_file "sandtable" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let path = Filename.concat dir "t.trace" in
      Trace.save path sample;
      Trace.save path sample;
      Alcotest.(check (array string)) "only the trace" [| "t.trace" |]
        (Sys.readdir dir))

let test_kinds () =
  Alcotest.(check (list string))
    "kind classes"
    [ "timeout"; "deliver"; "client"; "partition"; "crash"; "restart";
      "heal"; "drop"; "duplicate" ]
    (List.map Trace.kind sample)

let suite =
  ( "trace",
    [ case "event serialization roundtrip" test_event_roundtrip;
      case "file save/load roundtrip" test_file_roundtrip;
      case "garbage rejected" test_parse_garbage;
      case "descriptor with spaces" test_desc_with_spaces;
      case "equality semantics" test_equality_ignores_desc;
      case "truncated binary file rejected" test_truncated_file;
      case "legacy text format still loads" test_legacy_format;
      case "save is atomic, no temp leftovers" test_save_atomic;
      case "event kinds" test_kinds ] )
