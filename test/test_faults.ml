(* lib/faults: concrete-syntax round-trips and parse errors, compiler
   validation, budget reconciliation (merge + faults.id identity), the
   proper_groups canonical-cut property, plan-driven enumeration semantics
   on a synthetic spec (phases, selectors, caps, sampling, heal modes,
   timeout restriction), legacy-budget equivalence on real systems,
   worker-count determinism of schedule-driven runs, shrink replay under a
   recorded schedule, clock skew at the implementation level, and the
   manifest v4 schedule identity surface. *)

open Sandtable
module Sched = Faults.Schedule
module Compile = Faults.Compile
module R = Systems.Registry

let case name f = Alcotest.test_case name `Quick f

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let compile_exn ~nodes sched = ok_exn (Compile.to_plan ~nodes sched)
let apply_exn sched scenario = ok_exn (Compile.apply sched scenario)

(* ---- concrete syntax --------------------------------------------------- *)

let test_registry_roundtrip () =
  (* every named schedule prints to canonical syntax that parses back to
     the same canonical form (the manifest identity is a fixpoint) *)
  List.iter
    (fun sys ->
      List.iter
        (fun (name, sched) ->
          let src = Sched.to_string sched in
          match Sched.parse src with
          | Error e -> Alcotest.failf "%s/%s: reparse failed: %s" sys.R.name name e
          | Ok sched' ->
            Alcotest.(check string)
              (Fmt.str "%s/%s fixpoint" sys.R.name name)
              src (Sched.to_string sched'))
        sys.R.fault_schedules)
    R.all

let test_parse_comments_and_whitespace () =
  let src =
    "; a schedule with comments\n\
     (schedule commented ; trailing\n\
     \  (phase only ; the single phase\n\
     \    (crash (limit 1))))\n"
  in
  match Sched.parse src with
  | Error e -> Alcotest.failf "comments rejected: %s" e
  | Ok t ->
    Alcotest.(check string) "name" "commented" t.Sched.name;
    Alcotest.(check int) "phases" 1 (List.length t.Sched.phases)

let test_parse_errors () =
  let bad =
    [ "", "empty input";
      "(schedule", "unbalanced parens";
      "(sched x (phase p (crash (limit 1))))", "wrong head atom";
      "(schedule x)", "no phases";
      "(schedule x (phase p (crash)))", "crash without limit";
      "(schedule x (phase p (crash (limit many))))", "non-integer limit";
      "(schedule x (phase p (frobnicate (limit 1))))", "unknown clause";
      "(schedule x (phase p (heal sometimes)))", "unknown heal mode";
      "(schedule x (phase p (until timeouts)))", "until without count" ]
  in
  List.iter
    (fun (src, why) ->
      match Sched.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s: %S" why src)
    bad

(* ---- compiler validation ----------------------------------------------- *)

let one_phase faults = [ Sched.phase "only" faults ]

let test_compile_errors () =
  let reject why sched =
    match Compile.to_plan ~nodes:3 sched with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "compiled %s" why
  in
  reject "node out of range"
    (Sched.schedule "s" (one_phase [ Sched.crash ~sel:(Sched.Picked [ 3 ]) 1 ]));
  reject "duplicate phase labels"
    (Sched.schedule "s"
       [ Sched.phase ~until:(Sched.after "timeouts" 1) "p" [];
         Sched.phase "p" [ Sched.crash 1 ] ]);
  reject "non-final phase without until"
    (Sched.schedule "s"
       [ Sched.phase "a" []; Sched.phase "b" [ Sched.crash 1 ] ]);
  reject "unknown trigger counter"
    (Sched.schedule "s"
       [ Sched.phase ~until:(Sched.after "bogons" 1) "a" [];
         Sched.phase "b" [ Sched.crash 1 ] ]);
  reject "group missing node 0"
    (Sched.schedule "s"
       (one_phase [ Sched.partition ~groups:(Sched.Explicit [ [ 1 ] ]) 1 ]));
  reject "improper group (all nodes)"
    (Sched.schedule "s"
       (one_phase
          [ Sched.partition ~groups:(Sched.Explicit [ [ 0; 1; 2 ] ]) 1 ]));
  reject "zero sample bound"
    (Sched.schedule "s" (one_phase [ Sched.crash ~sample:0 2 ]));
  reject "skew node out of range"
    (Sched.schedule ~skew:[ 5, 10 ] "s" (one_phase [ Sched.crash 1 ]));
  reject "negative skew"
    (Sched.schedule ~skew:[ 1, -4 ] "s" (one_phase [ Sched.crash 1 ]))

let test_cumulative_caps () =
  (* per-phase limits lower to running totals *)
  let plan =
    compile_exn ~nodes:3
      (Sched.schedule "caps"
         [ Sched.phase ~until:(Sched.after "crashes" 1) "a" [ Sched.crash 1 ];
           Sched.phase "b" [ Sched.crash 2; Sched.restart 1 ] ])
  in
  let cap rule = (Option.get rule).Fault_plan.r_cap in
  (match plan.Fault_plan.pl_phases with
  | [ a; b ] ->
    Alcotest.(check int) "phase a crash cap" 1 (cap a.Fault_plan.ph_crash);
    Alcotest.(check int) "phase b crash cap" 3 (cap b.Fault_plan.ph_crash);
    Alcotest.(check bool) "phase a restarts disabled" true
      (a.Fault_plan.ph_restart = None);
    Alcotest.(check int) "phase b restart cap" 1 (cap b.Fault_plan.ph_restart)
  | _ -> Alcotest.fail "expected two phases");
  Alcotest.(check (list string))
    "enabled kinds" [ "crash"; "restart" ]
    (Fault_plan.enabled_kinds plan)

let test_apply_budget_merge () =
  let sched =
    Sched.schedule "merge"
      [ Sched.phase ~until:(Sched.after "crashes" 2) "a" [ Sched.crash 2 ];
        Sched.phase "b" [ Sched.crash 1; Sched.drop 2 ] ]
  in
  let scenario =
    Scenario.v ~name:"m" ~nodes:3 ~workload:[ 1 ]
      [ "timeouts", 4; "crashes", 1 ]
  in
  let applied = apply_exn sched scenario in
  ok_exn (Scenario.validate applied);
  (* crashes raised to the plan's total cap; untouched keys survive; the
     schedule digest is recorded under the identity key *)
  Alcotest.(check int) "crashes raised" 3
    (Scenario.budget_get applied.budget "crashes" ~default:0);
  Alcotest.(check int) "drops added" 2
    (Scenario.budget_get applied.budget "drops" ~default:0);
  Alcotest.(check int) "timeouts untouched" 4
    (Scenario.budget_get applied.budget "timeouts" ~default:0);
  let plan = Option.get applied.faults in
  Alcotest.(check int) "identity key = digest"
    (Fault_plan.digest plan)
    (Scenario.budget_get applied.budget "faults.id" ~default:(-1));
  (* re-parsing the recorded source and re-applying reproduces the digest:
     the manifest's m_faults string is enough to rebuild the scenario *)
  let replayed =
    apply_exn (ok_exn (Sched.parse plan.Fault_plan.pl_src)) scenario
  in
  Alcotest.(check int) "digest stable through source round-trip"
    (Fault_plan.digest plan)
    (Fault_plan.digest (Option.get replayed.faults))

let test_noop_plan_detected () =
  let plan =
    compile_exn ~nodes:3 (Sched.schedule "idle" (one_phase []))
  in
  Alcotest.(check bool) "no-op" true (Fault_plan.is_noop plan);
  let armed =
    compile_exn ~nodes:3 (Sched.schedule "armed" (one_phase [ Sched.dup 1 ]))
  in
  Alcotest.(check bool) "dup arms the plan" false (Fault_plan.is_noop armed);
  let skewed =
    compile_exn ~nodes:3
      (Sched.schedule ~skew:[ 1, 10 ] "skewed" (one_phase []))
  in
  Alcotest.(check bool) "skew arms the plan" false (Fault_plan.is_noop skewed)

(* ---- scenario budget hygiene (closed key set, identity keys) ----------- *)

let test_scenario_validation () =
  let v budget = Scenario.v ~name:"v" ~nodes:2 ~workload:[ 1 ] budget in
  ok_exn (Scenario.validate (v [ "timeouts", 3; "faults.id", 42 ]));
  (match Scenario.validate (v [ "timeuots", 3 ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "typo'd key accepted");
  (match Scenario.validate (v [ "timeouts", -1 ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative bound accepted");
  Alcotest.(check (list (pair string int)))
    "double skips identity keys"
    [ "timeouts", 6; "faults.id", 42 ]
    (Scenario.double [ "timeouts", 3; "faults.id", 42 ])

(* ---- proper_groups: one canonical representative per two-sided cut ----- *)

let test_proper_groups_canonical () =
  for n = 2 to 6 do
    let groups = Envgen.proper_groups n in
    (* each group is a proper nonempty subset containing node 0, with
       members in range and strictly increasing (canonical order) *)
    List.iter
      (fun g ->
        Alcotest.(check bool) (Fmt.str "n=%d contains 0" n) true
          (List.mem 0 g);
        Alcotest.(check bool) (Fmt.str "n=%d proper" n) true
          (List.length g >= 1 && List.length g < n);
        Alcotest.(check bool) (Fmt.str "n=%d in range" n) true
          (List.for_all (fun i -> i >= 0 && i < n) g);
        let sorted = List.sort_uniq compare g in
        Alcotest.(check bool) (Fmt.str "n=%d no duplicates" n) true
          (List.length sorted = List.length g))
      groups;
    (* exactly one representative per two-sided cut: the side containing
       node 0 determines the cut, so distinct groups = distinct cuts, and
       there are 2^(n-1) - 1 of them *)
    let keys =
      List.sort_uniq compare
        (List.map (fun g -> List.sort compare g) groups)
    in
    Alcotest.(check int) (Fmt.str "n=%d distinct" n) (List.length groups)
      (List.length keys);
    Alcotest.(check int)
      (Fmt.str "n=%d count = 2^(n-1)-1" n)
      ((1 lsl (n - 1)) - 1)
      (List.length groups)
  done

(* ---- a synthetic failure-event spec, for enumeration semantics --------- *)

type fstate = { up : bool array; cut : int list option; c : Counters.t }

let fault_ops : fstate Envgen.ops =
  { counters = (fun s -> s.c);
    with_counters = (fun s c -> { s with c });
    node_count = (fun s -> Array.length s.up);
    alive = (fun s i -> s.up.(i));
    fully_connected = (fun s -> s.cut = None);
    crash = (fun s i -> { s with up = Arr.update s.up i (fun _ -> false) });
    restart = (fun s i -> { s with up = Arr.update s.up i (fun _ -> true) });
    partition = (fun s g -> { s with cut = Some g });
    heal = (fun s -> { s with cut = None });
    (* node 0 is the leader while alive *)
    leader = (fun s -> if s.up.(0) then Some 0 else None) }

module Fault_toy = struct
  type state = fstate

  let name = "faulttoy"

  let init (scenario : Scenario.t) =
    [ { up = Array.make scenario.nodes true; cut = None; c = Counters.zero } ]

  let next (scenario : Scenario.t) st =
    let ticks =
      List.filter_map
        (fun node ->
          if
            st.up.(node)
            && st.c.Counters.timeouts
               < Scenario.budget_get scenario.budget "timeouts" ~default:0
            && Envgen.timeout_allowed fault_ops scenario st ~node
          then
            let event = Trace.Timeout { node; kind = "tick" } in
            Some (event, { st with c = Counters.bump st.c event })
          else None)
        (List.init (Array.length st.up) Fun.id)
    in
    ticks @ Envgen.failure_events fault_ops scenario st

  let constraint_ok (scenario : Scenario.t) st =
    Counters.within st.c scenario.budget

  let invariants = [ ("LeaderUp", fun (_ : Scenario.t) st -> st.up.(0)) ]

  let observe st =
    Tla.Value.record
      [ ( "up",
          Tla.Value.seq
            (Array.to_list (Array.map Tla.Value.bool st.up)) );
        ( "cut",
          Tla.Value.seq
            (List.map Tla.Value.int (Option.value st.cut ~default:[])) ) ]

  let permutable = false
  let permute _ st = st

  let pp_state ppf st =
    Fmt.pf ppf "up=%a cut=%a"
      Fmt.(Dump.array bool)
      st.up
      Fmt.(Dump.option (Dump.list int))
      st.cut
end

let fault_toy : Spec.t = (module Fault_toy)

let toy_scenario ?faults budget =
  Scenario.v ?faults ~name:"faulttoy" ~nodes:3 ~workload:[ 1 ] budget

let init_state nodes = { up = Array.make nodes true; cut = None; c = Counters.zero }

let events sc st =
  List.map (fun (e, _) -> Trace.serialize_event e)
    (Envgen.failure_events fault_ops sc st)

let test_plan_phase_semantics () =
  (* quiet phase: no faults until a timeout fires; then leader-only crash;
     healing only after two timeouts *)
  let sched =
    Sched.schedule "staged"
      [ Sched.phase ~until:(Sched.after "timeouts" 1) "quiet" [];
        Sched.phase ~until:(Sched.after "crashes" 1) "kill"
          [ Sched.crash ~sel:Sched.Leader 1;
            Sched.partition ~groups:Sched.Isolate_leader 1;
            Sched.heal (Sched.After_trigger (Sched.after "timeouts" 2)) ];
        Sched.phase "after" [ Sched.restart 1 ] ]
  in
  let sc = apply_exn sched (toy_scenario [ "timeouts", 3 ]) in
  let st0 = init_state 3 in
  Alcotest.(check (list string)) "quiet phase enumerates nothing" [] (events sc st0);
  let tick node st =
    { st with c = Counters.bump st.c (Trace.Timeout { node; kind = "tick" }) }
  in
  let st1 = tick 1 st0 in
  (* leader alive: crash targets node 0 only; isolate-leader with leader 0
     yields the canonical [[0]] cut *)
  Alcotest.(check (list string)) "kill phase: leader crash + leader cut"
    [ Trace.serialize_event (Trace.Crash { node = 0 });
      Trace.serialize_event (Trace.Partition { group = [ 0 ] }) ]
    (events sc st1);
  (* once partitioned, heal is withheld until the second timeout *)
  let cut = { st1 with cut = Some [ 0 ];
                       c = Counters.bump st1.c (Trace.Partition { group = [ 0 ] }) } in
  Alcotest.(check (list string)) "heal withheld before trigger"
    [ Trace.serialize_event (Trace.Crash { node = 0 }) ]
    (events sc cut);
  Alcotest.(check (list string)) "heal released by trigger"
    [ Trace.serialize_event (Trace.Crash { node = 0 });
      Trace.serialize_event Trace.Heal ]
    (events sc (tick 2 cut));
  (* after the crash the third phase is active: restarts only *)
  let crashed =
    { st1 with up = [| false; true; true |];
               c = Counters.bump st1.c (Trace.Crash { node = 0 }) }
  in
  Alcotest.(check (list string)) "final phase restarts the dead node"
    [ Trace.serialize_event (Trace.Restart { node = 0 }) ]
    (events sc crashed)

let test_timeout_restriction () =
  let sched =
    Sched.schedule "quiet-followers"
      (one_phase [ Sched.timeouts ~sel:(Sched.Picked [ 0 ]) 1 ])
  in
  let sc = apply_exn sched (toy_scenario [ "timeouts", 3 ]) in
  let st = init_state 3 in
  Alcotest.(check bool) "selected node may fire" true
    (Envgen.timeout_allowed fault_ops sc st ~node:0);
  Alcotest.(check bool) "unselected node may not" false
    (Envgen.timeout_allowed fault_ops sc st ~node:1);
  let after_one =
    { st with c = Counters.bump st.c (Trace.Timeout { node = 0; kind = "t" }) }
  in
  Alcotest.(check bool) "cap exhausts the allowance" false
    (Envgen.timeout_allowed fault_ops sc after_one ~node:0)

let test_sampling_deterministic () =
  (* a sample bound keeps a stable strict subset, identical across calls *)
  let sched =
    Sched.schedule ~seed:9 "sampled" (one_phase [ Sched.crash ~sample:2 3 ])
  in
  let sc = apply_exn sched (toy_scenario [ "timeouts", 1 ]) in
  let st = init_state 3 in
  let first = events sc st in
  Alcotest.(check int) "bound respected" 2 (List.length first);
  Alcotest.(check (list string)) "stable across calls" first (events sc st);
  (* a different seed is allowed to pick a different subset, but must be
     equally stable *)
  let sched' =
    Sched.schedule ~seed:10 "sampled" (one_phase [ Sched.crash ~sample:2 3 ])
  in
  let sc' = apply_exn sched' (toy_scenario [ "timeouts", 1 ]) in
  Alcotest.(check (list string)) "other seed stable"
    (events sc' st) (events sc' st)

let test_failure_events_within_budget () =
  (* exhaustive closure over fault events: no reachable state exceeds the
     fault budget, with or without a plan attached *)
  let scenarios =
    [ toy_scenario
        [ "timeouts", 2; "crashes", 2; "restarts", 1; "partitions", 1 ];
      apply_exn
        (Sched.of_budget
           [ "crashes", 2; "restarts", 1; "partitions", 1 ])
        (toy_scenario
           [ "timeouts", 2; "crashes", 2; "restarts", 1; "partitions", 1 ])
    ]
  in
  List.iter
    (fun sc ->
      let seen = Hashtbl.create 64 in
      let rec walk st =
        let key = Fmt.str "%a" Fault_toy.pp_state st ^ Fmt.str "%a" Counters.pp st.c in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          List.iter
            (fun (_, st') ->
              Alcotest.(check bool) "within budget" true
                (Counters.within st'.c sc.Scenario.budget);
              walk st')
            (Envgen.failure_events fault_ops sc st)
        end
      in
      walk (init_state 3);
      Alcotest.(check bool) "explored some states" true (Hashtbl.length seen > 1))
    scenarios

(* ---- shrink replay under the recorded schedule ------------------------- *)

let test_shrink_replays_under_schedule () =
  (* the crash that kills the leader is only enabled in the second phase,
     so the minimized trace must keep the phase-advancing timeout: ddmin
     candidates that elide it fail replay validation under the plan *)
  let sched =
    Sched.schedule "staged-kill"
      [ Sched.phase ~until:(Sched.after "timeouts" 1) "quiet" [];
        Sched.phase "kill" [ Sched.crash ~sel:Sched.Leader 1 ] ]
  in
  let scenario = apply_exn sched (toy_scenario [ "timeouts", 3 ]) in
  let r = Explorer.check fault_toy scenario Explorer.default in
  match r.outcome with
  | Explorer.Violation v ->
    Alcotest.(check string) "violated invariant" "LeaderUp" v.invariant;
    let o = Shrink.run fault_toy scenario (Shrink.Invariant v.invariant) v.events in
    Alcotest.(check int) "minimal length keeps the phase trigger" 2
      o.Shrink.minimized_len;
    (match o.Shrink.minimized with
    | [ Trace.Timeout _; Trace.Crash { node = 0 } ] -> ()
    | t -> Alcotest.failf "unexpected minimized trace: %s" (Trace.to_string t));
    Alcotest.(check bool) "minimized replays under the schedule" true
      (Spec.observations_along fault_toy scenario o.Shrink.minimized <> None)
  | _ -> Alcotest.fail "expected a LeaderUp violation"

(* ---- legacy-budget equivalence on real systems ------------------------- *)

let shrink_budget budget =
  List.map
    (fun (k, v) ->
      match k with
      | "timeouts" -> (k, min v 2)
      | "requests" -> (k, min v 1)
      | _ -> (k, v))
    budget

let test_of_budget_equivalence () =
  (* the single-phase schedule encoding a flat budget explores exactly the
     legacy state space (acceptance criterion; two TCP systems, one UDP) *)
  List.iter
    (fun name ->
      let sys = R.find name in
      let spec = sys.R.spec (R.flags_of sys []) in
      let scenario =
        { sys.R.default_scenario with
          Scenario.budget = shrink_budget sys.R.default_scenario.budget }
      in
      let plain = Explorer.check spec scenario Explorer.default in
      let planned =
        Explorer.check spec
          (apply_exn (Sched.of_budget scenario.budget) scenario)
          Explorer.default
      in
      Alcotest.(check int) (name ^ " distinct") plain.distinct planned.distinct;
      Alcotest.(check int) (name ^ " generated") plain.generated planned.generated;
      Alcotest.(check int) (name ^ " max_depth") plain.max_depth planned.max_depth;
      Alcotest.(check bool) (name ^ " nontrivial") true (plain.distinct > 10))
    [ "pysyncobj"; "raftos"; "xraft" ]

(* ---- schedule-driven runs are identical at any worker count ------------ *)

let test_workers_determinism_under_schedule () =
  let sys = R.find "pysyncobj" in
  let spec = sys.R.spec (R.flags_of sys []) in
  let scenario =
    { sys.R.default_scenario with
      Scenario.budget = shrink_budget sys.R.default_scenario.budget }
  in
  let scenario =
    apply_exn (Option.get (R.schedule_of sys "leader-partition")) scenario
  in
  let run workers =
    let obs = Obs.Run.create ~workers () in
    let opts = { Explorer.default with probe = Obs.Run.probe obs } in
    let result =
      if workers = 1 then Explorer.check spec scenario opts
      else (Par.Par_explorer.check ~workers spec scenario opts).Par.Par_explorer.base
    in
    let summary =
      Obs.Run.finish obs ~outcome:"exhausted" ~distinct:result.Explorer.distinct
        ~generated:result.Explorer.generated ~max_depth:result.Explorer.max_depth
        ~duration:result.Explorer.duration ()
    in
    let faults =
      List.filter
        (fun (name, _) -> String.length name > 6 && String.sub name 0 6 = "fault.")
        summary.Obs.Run.s_metrics.Obs.Metrics.s_counters
    in
    (result.Explorer.distinct, result.Explorer.generated, faults)
  in
  let d1, g1, f1 = run 1 in
  Alcotest.(check bool) "schedule produced fault events" true
    (List.exists (fun (_, v) -> v > 0) f1);
  List.iter
    (fun j ->
      let d, g, f = run j in
      Alcotest.(check int) (Fmt.str "j%d distinct" j) d1 d;
      Alcotest.(check int) (Fmt.str "j%d generated" j) g1 g;
      Alcotest.(check (list (pair string int))) (Fmt.str "j%d fault counters" j) f1 f)
    [ 2; 4 ]

(* ---- clock skew reaches the implementation's virtual clocks ------------ *)

let clock_boot : Engine.Syscall.boot =
 fun ctx ->
  { Engine.Syscall.handle_message = (fun ~src:_ _ -> ());
    on_timeout = (fun ~kind:_ -> ());
    on_client = (fun ~op:_ -> ());
    observe = (fun () -> Tla.Value.record [ "now", Tla.Value.int (ctx.now_us ()) ]) }

let node_now cluster i =
  match Engine.Cluster.observe_node cluster i with
  | Some v -> (
    match Tla.Value.field v "now" with
    | Some (Tla.Value.Int us) -> us
    | _ -> Alcotest.fail "no clock observation")
  | None -> Alcotest.fail "node down"

let test_cluster_clock_skew () =
  let mk clock_skew_ms =
    Engine.Cluster.create
      { Engine.Cluster.nodes = 2;
        semantics = Spec_net.Tcp;
        timeouts = [];
        clock_skew_ms;
        cost = Engine.Cost.profile ();
        boot = clock_boot }
  in
  let plain = mk [] and skewed = mk [ 1, 40 ] in
  let base_delta = node_now plain 1 - node_now plain 0 in
  let skew_delta = node_now skewed 1 - node_now skewed 0 in
  (* 40ms of skew = 40_000µs, on top of whatever read-increment offset the
     synchronized cluster exhibits *)
  Alcotest.(check int) "40ms ahead" 40_000 (skew_delta - base_delta)

(* ---- manifest v4: the schedule identity surface ------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let dir = Filename.temp_file "sandtable-faults" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_manifest_v4_roundtrip () =
  with_tmpdir @@ fun dir ->
  let src =
    Sched.to_string (Option.get (R.schedule_of (R.find "pysyncobj") "leader-partition"))
  in
  let m =
    { (Store.Manifest.make ~system:"pysyncobj" ~scenario:"default"
         ~identity:"abc" ~engine:"seq" ~workers:1 ~flags:[] ())
      with Store.Manifest.m_faults = Some src }
  in
  Alcotest.(check int) "current schema" Store.Manifest.version
    m.Store.Manifest.m_version;
  Store.Manifest.save ~dir m;
  (match Store.Manifest.load ~dir with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok m' ->
    Alcotest.(check (option string)) "schedule source survives" (Some src)
      m'.Store.Manifest.m_faults;
    (* and the stored source still parses to the same canonical form *)
    Alcotest.(check string) "stored source is canonical" src
      (Sched.to_string (ok_exn (Sched.parse (Option.get m'.Store.Manifest.m_faults)))));
  (* a manifest without the field — any pre-v4 file — loads with None *)
  let dir_old = Filename.concat dir "old" in
  Store.Manifest.save ~dir:dir_old
    { m with Store.Manifest.m_faults = None };
  match Store.Manifest.load ~dir:dir_old with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok m' ->
    Alcotest.(check (option string)) "absent field loads as None" None
      m'.Store.Manifest.m_faults

let suite =
  ( "faults",
    [ case "registry schedules round-trip canonically" test_registry_roundtrip;
      case "comments and whitespace" test_parse_comments_and_whitespace;
      case "parse errors name the offence" test_parse_errors;
      case "compiler validation" test_compile_errors;
      case "per-phase limits lower to cumulative caps" test_cumulative_caps;
      case "apply merges budget and records identity" test_apply_budget_merge;
      case "no-op plans are detected" test_noop_plan_detected;
      case "budget key set is closed" test_scenario_validation;
      case "proper_groups: one representative per cut" test_proper_groups_canonical;
      case "phase structure gates enumeration" test_plan_phase_semantics;
      case "timeout restriction" test_timeout_restriction;
      case "sampling is deterministic" test_sampling_deterministic;
      case "failure events stay within budget" test_failure_events_within_budget;
      case "shrink replays under the recorded schedule"
        test_shrink_replays_under_schedule;
      case "of_budget schedule = legacy state space" test_of_budget_equivalence;
      case "identical at -j1/-j2/-j4 under a schedule"
        test_workers_determinism_under_schedule;
      case "clock skew reaches implementation clocks" test_cluster_clock_skew;
      case "manifest v4 records the schedule" test_manifest_v4_roundtrip ] )
