(* Work-stealing engine (lib/par/ws_explorer): schedule-invariant totals
   and verdicts at exhaustion, checkpoint/resume across engines and worker
   counts, and the CLI contract around --strict-bfs. Unlike test_par, the
   equivalence asserted here is deliberately weaker — WS discovery depths
   are schedule-dependent, so only distinct/generated on exhaustive runs
   and violation/deadlock verdicts are compared, never max_depth or any
   depth-budgeted counter. *)

open Sandtable

let case name f = Alcotest.test_case name `Quick f
let worker_counts = [ 1; 2; 4 ]

let totals (r : Explorer.result) = (r.distinct, r.generated)

let check_totals label seq (ws : Par.Ws_explorer.result) =
  Alcotest.(check (pair int int)) label (totals seq) (totals ws.base)

let exhausted label (o : Explorer.outcome) =
  match o with
  | Explorer.Exhausted -> ()
  | _ -> Alcotest.fail (label ^ ": run should exhaust")

(* A snapshot's visited iterator may stream over live engine state —
   capture hooks must materialize before the engine moves on. *)
let materialize (s : Explorer.snapshot) : Explorer.snapshot =
  let entries = ref [] in
  s.snap_visited (fun fp prov depth -> entries := (fp, prov, depth) :: !entries);
  let entries = !entries in
  { s with
    snap_visited = (fun f -> List.iter (fun (fp, p, d) -> f fp p d) entries)
  }

let capture_first cap =
  Some
    (fun _d snap ->
      if Option.is_none !cap then cap := Some (materialize (Lazy.force snap)))

(* Run the WS engine with [pulse_every:0.0] until some pulse catches the
   run mid-flight (snapshot hooks only fire while the frontier is
   non-empty, and a tiny space can drain before worker 0's first pulse —
   retry rather than flake). Returns the completed run and a materialized
   mid-run snapshot with fewer than [total] distinct states. *)
let capture_ws_snapshot ~total spec scenario =
  let rec go attempts =
    if attempts = 0 then
      Alcotest.fail "no pulse captured a mid-run snapshot in 10 attempts"
    else
      let cap = ref None in
      let opts = { Explorer.default with on_layer = capture_first cap } in
      let r =
        Par.Ws_explorer.check ~workers:2 ~pulse_every:0.0 spec scenario opts
      in
      match !cap with
      | Some s when s.Explorer.snap_distinct < total -> (r, s)
      | _ -> go (attempts - 1)
  in
  go 10

let test_toy_exhaustive_invariance () =
  let scenario = Toy_spec.scenario ~nodes:2 ~timeouts:4 in
  let spec = Toy_spec.spec () in
  List.iter
    (fun symmetry ->
      let opts = { Explorer.default with symmetry } in
      let seq = Explorer.check spec scenario opts in
      exhausted "sequential" seq.outcome;
      List.iter
        (fun workers ->
          let ws = Par.Ws_explorer.check ~workers spec scenario opts in
          let l = Fmt.str "sym=%b workers=%d" symmetry workers in
          exhausted l ws.base.outcome;
          check_totals (l ^ " totals") seq ws)
        worker_counts)
    [ false; true ]

let test_toy_violation_verdict () =
  (* early stop makes totals schedule-dependent; the verdict is not *)
  let scenario = Toy_spec.scenario ~nodes:3 ~timeouts:6 in
  let spec = Toy_spec.spec ~limit:3 () in
  let seq = Explorer.check spec scenario Explorer.default in
  let sv =
    match seq.outcome with
    | Explorer.Violation v -> v
    | _ -> Alcotest.fail "sequential run must violate"
  in
  List.iter
    (fun workers ->
      match
        (Par.Ws_explorer.check ~workers spec scenario Explorer.default).base
          .outcome
      with
      | Explorer.Violation wv ->
        Alcotest.(check string)
          (Fmt.str "invariant workers=%d" workers)
          sv.invariant wv.invariant
      | _ -> Alcotest.fail "work-stealing run must violate")
    worker_counts

let test_toy_deadlock_verdict () =
  let scenario = Toy_spec.scenario ~nodes:1 ~timeouts:2 in
  let opts = { Explorer.default with check_deadlock = true } in
  let seq = Explorer.check (Toy_spec.spec ()) scenario opts in
  (match seq.outcome with
  | Explorer.Deadlock _ -> ()
  | _ -> Alcotest.fail "sequential run must deadlock");
  List.iter
    (fun workers ->
      match
        (Par.Ws_explorer.check ~workers (Toy_spec.spec ()) scenario opts).base
          .outcome
      with
      | Explorer.Deadlock _ -> ()
      | _ -> Alcotest.failf "workers=%d: work-stealing run must deadlock"
               workers)
    worker_counts

let tiny_budget =
  (* every recognised bound closed off so all 8 systems exhaust quickly *)
  [ ("timeouts", 2); ("requests", 1); ("crashes", 0); ("restarts", 0);
    ("partitions", 0); ("buffer", 2); ("drops", 0); ("dups", 0);
    ("epochs", 1) ]

let test_registry_sweep_invariance () =
  let module R = Systems.Registry in
  List.iter
    (fun (sys : R.t) ->
      let spec = sys.spec (Systems.Bug.flags []) in
      let scenario =
        Scenario.v ~name:(sys.name ^ "-tiny") ~nodes:2 ~workload:[ 1 ]
          tiny_budget
      in
      let seq = Explorer.check spec scenario Explorer.default in
      exhausted (sys.name ^ " sequential") seq.outcome;
      Alcotest.(check bool)
        (sys.name ^ " explores something") true (seq.generated > 0);
      List.iter
        (fun workers ->
          let ws =
            Par.Ws_explorer.check ~workers spec scenario Explorer.default
          in
          let l = Fmt.str "%s workers=%d" sys.name workers in
          exhausted l ws.base.outcome;
          check_totals l seq ws)
        worker_counts)
    R.all

let resume_scenario = Toy_spec.scenario ~nodes:2 ~timeouts:6

let test_ws_resume_different_workers () =
  (* a mid-run unordered snapshot resumes at any worker count to the same
     exhaustive totals as the uninterrupted run *)
  let spec = Toy_spec.spec () in
  let seq = Explorer.check spec resume_scenario Explorer.default in
  exhausted "sequential" seq.outcome;
  let first, snap = capture_ws_snapshot ~total:seq.distinct spec resume_scenario in
  exhausted "interrupted original" first.base.outcome;
  check_totals "uninterrupted totals" seq first;
  (match snap.Explorer.snap_mode with
  | Explorer.Unordered -> ()
  | Explorer.Layered -> Alcotest.fail "WS snapshot must be Unordered");
  List.iter
    (fun workers ->
      let r =
        Par.Ws_explorer.check ~workers ~resume:snap spec resume_scenario
          Explorer.default
      in
      let l = Fmt.str "resumed workers=%d" workers in
      exhausted l r.base.outcome;
      check_totals l seq r)
    worker_counts

let test_layered_snapshot_resumes_in_ws () =
  (* strict-engine checkpoints seed the work-stealing engine *)
  let spec = Toy_spec.spec () in
  let seq = Explorer.check spec resume_scenario Explorer.default in
  exhausted "sequential" seq.outcome;
  let cap = ref None in
  let opts =
    { Explorer.default with
      on_layer =
        Some
          (fun d snap ->
            if d = 2 && Option.is_none !cap then
              cap := Some (materialize (Lazy.force snap))) }
  in
  ignore (Explorer.check spec resume_scenario opts);
  let snap =
    match !cap with Some s -> s | None -> Alcotest.fail "layer 2 not reached"
  in
  (match snap.Explorer.snap_mode with
  | Explorer.Layered -> ()
  | Explorer.Unordered -> Alcotest.fail "sequential snapshot must be Layered");
  List.iter
    (fun workers ->
      let r =
        Par.Ws_explorer.check ~workers ~resume:snap spec resume_scenario
          Explorer.default
      in
      let l = Fmt.str "layered resume workers=%d" workers in
      exhausted l r.base.outcome;
      check_totals l seq r)
    worker_counts

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_strict_engines_refuse_unordered () =
  let spec = Toy_spec.spec () in
  let cap = ref None in
  let opts = { Explorer.default with on_layer = capture_first cap } in
  ignore (Explorer.check spec resume_scenario opts);
  let snap =
    match !cap with Some s -> s | None -> Alcotest.fail "no layer fired"
  in
  let unordered = { snap with Explorer.snap_mode = Explorer.Unordered } in
  (match Explorer.check ~resume:unordered spec resume_scenario Explorer.default
   with
  | _ -> Alcotest.fail "sequential engine must refuse an unordered snapshot"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "seq names the mode" true (contains msg "unordered"));
  match
    Par.Par_explorer.check ~workers:2 ~resume:unordered spec resume_scenario
      Explorer.default
  with
  | _ -> Alcotest.fail "parallel engine must refuse an unordered snapshot"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "par names the mode" true (contains msg "unordered")

let with_tmpdir f =
  let dir = Filename.temp_file "sandtable-ws" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let test_checkpoint_roundtrips_unordered () =
  (* Store.Checkpoint must persist the frontier mode: a WS snapshot loaded
     from disk still refuses strict engines and resumes in WS *)
  let spec = Toy_spec.spec () in
  let seq = Explorer.check spec resume_scenario Explorer.default in
  let _, snap = capture_ws_snapshot ~total:seq.distinct spec resume_scenario in
  with_tmpdir (fun dir ->
      let identity =
        Store.Checkpoint.identity spec resume_scenario Explorer.default
      in
      ignore (Store.Checkpoint.save ~dir ~identity snap);
      let loaded = Store.Checkpoint.load ~dir ~identity in
      (match loaded.Explorer.snap_mode with
      | Explorer.Unordered -> ()
      | Explorer.Layered -> Alcotest.fail "mode lost in the codec");
      Alcotest.(check int) "distinct preserved" snap.Explorer.snap_distinct
        loaded.Explorer.snap_distinct;
      let r =
        Par.Ws_explorer.check ~workers:2 ~resume:loaded spec resume_scenario
          Explorer.default
      in
      exhausted "resumed from disk" r.base.outcome;
      check_totals "resumed totals" seq r)

(* {2 CLI contract} — same harness as test_cli: spawn the real binary. *)

let exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/sandtable_cli.exe"

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_cli args =
  let out = Filename.temp_file "sandtable-ws" ".out" in
  let err = Filename.temp_file "sandtable-ws" ".err" in
  let fd_of path = Unix.openfile path [ O_WRONLY; O_TRUNC ] 0o600 in
  let fd_out = fd_of out and fd_err = fd_of err in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      Unix.stdin fd_out fd_err
  in
  Unix.close fd_out;
  Unix.close fd_err;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  let read path =
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> slurp path)
  in
  (code, read out, read err)

let check_contains label haystack needle =
  if not (contains haystack needle) then
    Alcotest.failf "%s: expected %S in:\n%s" label needle haystack

let test_cli_ws_checkpoint_and_strict_refusal () =
  with_tmpdir (fun dir ->
      let args =
        [ "check"; "pysyncobj"; "-j"; "2"; "--run-dir"; dir;
          "--checkpoint-every"; "1"; "--telemetry-every"; "0.05s";
          "--max-states"; "30000" ]
      in
      let code, out, err = run_cli args in
      Alcotest.(check int) "exit 0" 0 code;
      check_contains "hit the budget" out "budget spent";
      check_contains "checkpoint saved at a pulse" err "checkpoint at depth";
      check_contains "steal telemetry recorded"
        (slurp (Filename.concat dir "telemetry.ndjsonl"))
        "steal_count";
      (* the checkpoint has an unordered frontier: strict-BFS must refuse
         it by name before touching the run dir... *)
      let code2, _, err2 = run_cli (args @ [ "--resume"; "--strict-bfs" ]) in
      Alcotest.(check int) "strict resume refused" 2 code2;
      check_contains "refusal names the mode" err2 "unordered";
      (* ...while the work-stealing engine picks it up *)
      let code3, out3, err3 = run_cli (args @ [ "--resume" ]) in
      Alcotest.(check int) "ws resume ok" 0 code3;
      check_contains "resumed from the checkpoint" err3 "resuming at depth";
      check_contains "reported a result" out3 "distinct=")

let test_cli_shrink_under_ws () =
  with_tmpdir (fun dir ->
      let code, out, _ =
        run_cli
          [ "check"; "daosraft"; "--bugs"; "daos1"; "-j"; "2"; "--run-dir";
            dir; "--shrink" ]
      in
      Alcotest.(check int) "exit 1 = bug found" 1 code;
      check_contains "violation reported" out "violated at depth";
      check_contains "trace minimized" out "shrunk";
      check_contains "minimized trace replays" out "CONFIRMED")

let suite =
  ( "ws",
    [ case "toy exhaustive invariance (1/2/4 workers)"
        test_toy_exhaustive_invariance;
      case "toy violation verdict invariance" test_toy_violation_verdict;
      case "toy deadlock verdict invariance" test_toy_deadlock_verdict;
      case "registry-wide exhaustive invariance (1/2/4 workers)"
        test_registry_sweep_invariance;
      case "unordered snapshot resumes at any worker count"
        test_ws_resume_different_workers;
      case "layered snapshot resumes in the WS engine"
        test_layered_snapshot_resumes_in_ws;
      case "strict engines refuse unordered snapshots"
        test_strict_engines_refuse_unordered;
      case "checkpoint codec round-trips the frontier mode"
        test_checkpoint_roundtrips_unordered;
      case "cli: WS checkpoints pulse; --strict-bfs resume refused"
        test_cli_ws_checkpoint_and_strict_refusal;
      case "cli: shrink works under work stealing" test_cli_shrink_under_ws ]
  )
