(* lib/obs: metric merge determinism across worker counts, Chrome
   trace-event output validity and per-tid span nesting, events.ndjsonl
   agreement with explorer counters, stats-reader tolerance of v1 run
   directories, manifest v2 metrics roundtrip. *)

open Sandtable

let case name f = Alcotest.test_case name `Quick f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let dir = Filename.temp_file "sandtable-obs" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let spec = Toy_spec.spec ()
let scenario = Toy_spec.scenario ~nodes:2 ~timeouts:4

let check_with_workers ?dir ?trace_out workers =
  let obs = Obs.Run.create ~workers ?dir ?trace_out () in
  let opts = { Explorer.default with probe = Obs.Run.probe obs } in
  let result =
    if workers = 1 then Explorer.check spec scenario opts
    else (Par.Par_explorer.check ~workers spec scenario opts).base
  in
  let summary =
    Obs.Run.finish obs ~outcome:"exhausted" ~distinct:result.distinct
      ~generated:result.generated ~max_depth:result.max_depth
      ~duration:result.duration ()
  in
  (result, summary)

(* ---- metrics: deterministic across -j --------------------------------- *)

let test_merge_determinism () =
  let runs =
    List.map
      (fun j ->
        let result, summary = check_with_workers j in
        (j, result, summary))
      [ 1; 2; 4 ]
  in
  let _, r1, s1 = List.hd runs in
  (* every counter, including the perm-cache hit/miss split: engines count
     only lookups (a deterministic total) and Run.finish derives the split
     as lookups − 1 hits / 1 cold miss, so no counter is worker-racy *)
  let stable (s : Obs.Run.summary) = s.s_metrics.Obs.Metrics.s_counters in
  List.iter
    (fun (j, r, s) ->
      Alcotest.(check int) (Fmt.str "j%d distinct" j) r1.Explorer.distinct
        r.Explorer.distinct;
      Alcotest.(check int) (Fmt.str "j%d generated" j) r1.Explorer.generated
        r.Explorer.generated;
      Alcotest.(check int)
        (Fmt.str "j%d peak frontier" j)
        s1.Obs.Run.s_peak_frontier s.Obs.Run.s_peak_frontier;
      Alcotest.(check int) (Fmt.str "j%d layers" j) s1.Obs.Run.s_layers
        s.Obs.Run.s_layers;
      Alcotest.(check (list (pair string int)))
        (Fmt.str "j%d counters" j)
        (stable s1) (stable s))
    (List.tl runs)

let test_dup_counter_accounts_for_generated () =
  (* on an exhaustive run every generated state is either a distinct
     insertion or a duplicate hit, at any worker count; distinct also
     counts the one root state, which is discovered rather than generated *)
  let roots = 1 in
  List.iter
    (fun j ->
      let result, summary = check_with_workers j in
      let dups = Obs.Metrics.counter summary.Obs.Run.s_metrics "fp.dup" in
      Alcotest.(check int)
        (Fmt.str "j%d distinct + dups = generated + roots" j)
        (result.Explorer.generated + roots)
        (result.Explorer.distinct + dups))
    [ 1; 3 ]

(* ---- trace: valid JSON, spans nest per tid ---------------------------- *)

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_trace_valid_and_nested () =
  with_tmpdir (fun dir ->
      let trace_out = Filename.concat dir "trace.json" in
      let _ = check_with_workers ~trace_out 4 in
      let json =
        match Store.Sjson.of_string (read_whole trace_out) with
        | Ok j -> j
        | Error m -> Alcotest.failf "trace is not valid JSON: %s" m
      in
      let events =
        match
          Option.bind (Store.Sjson.member "traceEvents" json)
            Store.Sjson.to_list
        with
        | Some l -> l
        | None -> Alcotest.fail "trace has no traceEvents array"
      in
      Alcotest.(check bool) "has events" true (List.length events > 0);
      let str j name =
        Option.bind (Store.Sjson.member name j) Store.Sjson.to_str
      in
      let num j name =
        Option.bind (Store.Sjson.member name j) Store.Sjson.to_num
      in
      let spans =
        List.filter_map
          (fun e ->
            if str e "ph" = Some "X" then
              match (num e "tid", num e "ts", num e "dur") with
              | Some tid, Some ts, Some dur ->
                Alcotest.(check bool) "ts >= 0" true (ts >= 0.);
                Alcotest.(check bool) "dur >= 0" true (dur >= 0.);
                Some (int_of_float tid, ts, dur)
              | _ -> Alcotest.fail "X event missing tid/ts/dur"
            else begin
              (* only metadata events besides complete spans *)
              Alcotest.(check (option string)) "meta" (Some "M") (str e "ph");
              None
            end)
          events
      in
      let tids = List.sort_uniq compare (List.map (fun (t, _, _) -> t) spans) in
      Alcotest.(check (list int)) "one lane per worker" [ 0; 1; 2; 3 ] tids;
      (* within a tid, spans sorted by start either nest or are disjoint
         (sub-10µs fuzz tolerated: endpoints come from separate
         gettimeofday calls) *)
      let fuzz = 10. in
      List.iter
        (fun tid ->
          let mine =
            List.sort compare
              (List.filter_map
                 (fun (t, ts, dur) -> if t = tid then Some (ts, dur) else None)
                 spans)
          in
          ignore
            (List.fold_left
               (fun prev (ts, dur) ->
                 (match prev with
                 | Some (pts, pdur) ->
                   let disjoint = ts >= pts +. pdur -. fuzz in
                   let nested = ts +. dur <= pts +. pdur +. fuzz in
                   Alcotest.(check bool)
                     (Fmt.str "tid %d span at %f overlaps predecessor" tid ts)
                     true (disjoint || nested)
                 | None -> ());
                 Some (ts, dur))
               None mine))
        tids)

(* ---- events.ndjsonl vs explorer counters ------------------------------ *)

let test_events_match_result () =
  with_tmpdir (fun dir ->
      let result, summary = check_with_workers ~dir 1 in
      let records =
        match Obs.Events.read_all (Filename.concat dir Obs.Events.file) with
        | Ok r -> r
        | Error m -> Alcotest.failf "events unreadable: %s" m
      in
      let typ r =
        Option.bind (Store.Sjson.member "type" r) Store.Sjson.to_str
      in
      let int_field r name =
        match Option.bind (Store.Sjson.member name r) Store.Sjson.to_int with
        | Some n -> n
        | None -> Alcotest.failf "record missing %s" name
      in
      let layers = List.filter (fun r -> typ r = Some "layer") records in
      Alcotest.(check int) "layer records" summary.Obs.Run.s_layers
        (List.length layers);
      let last = List.nth layers (List.length layers - 1) in
      Alcotest.(check int) "final distinct" result.Explorer.distinct
        (int_field last "distinct");
      Alcotest.(check int) "final generated" result.Explorer.generated
        (int_field last "generated");
      Alcotest.(check int) "final frontier empty" 0 (int_field last "frontier");
      (match List.filter (fun r -> typ r = Some "done") records with
      | [ d ] ->
        Alcotest.(check int) "done distinct" result.Explorer.distinct
          (int_field d "distinct");
        Alcotest.(check int) "done max_depth" result.Explorer.max_depth
          (int_field d "max_depth")
      | l -> Alcotest.failf "expected one done record, found %d" (List.length l));
      (* metrics.json landed too *)
      Alcotest.(check bool) "metrics.json written" true
        (Sys.file_exists (Filename.concat dir Obs.Run.metrics_file)))

(* ---- stats reader on a v1 (pre-observability) run dir ----------------- *)

let v1_manifest =
  {|{
  "version": 1,
  "system": "toy",
  "scenario": "toy-2n",
  "identity": "deadbeef0123",
  "created": "2025-01-01T00:00:00Z",
  "engine": "seq",
  "workers": 1,
  "flags": {},
  "status": "done",
  "outcome": "exhausted",
  "distinct": 42,
  "generated": 99,
  "max_depth": 7,
  "duration_s": 0.5,
  "checkpoints": 0,
  "checkpoint": null,
  "trace": null
}|}

let test_stats_on_v1_run_dir () =
  with_tmpdir (fun dir ->
      let oc = open_out (Filename.concat dir Store.Manifest.file) in
      output_string oc v1_manifest;
      close_out oc;
      let report =
        match Obs.Report.load dir with
        | Ok r -> r
        | Error m -> Alcotest.failf "stats refused v1 run dir: %s" m
      in
      (match report.Obs.Report.rp_manifest with
      | Some (Ok m) ->
        Alcotest.(check int) "v1 version kept" 1 m.Store.Manifest.m_version;
        Alcotest.(check int) "v1 distinct" 42 m.Store.Manifest.m_distinct;
        Alcotest.(check bool) "v1 has no metrics" true
          (m.Store.Manifest.m_metrics = None)
      | _ -> Alcotest.fail "v1 manifest did not load");
      Alcotest.(check bool) "no metrics.json" true
        (report.Obs.Report.rp_metrics = None);
      (* rendering must not raise *)
      let rendered = Fmt.str "%a" Obs.Report.pp report in
      Alcotest.(check bool) "render mentions missing metrics" true
        (String.length rendered > 0))

(* ---- manifest metrics+shrink roundtrip -------------------------------------------- *)

let test_manifest_v3_roundtrip () =
  with_tmpdir (fun dir ->
      let m =
        { (Store.Manifest.make ~system:"toy" ~scenario:"toy-2n"
             ~identity:"cafebabe" ~engine:"par" ~workers:4 ~flags:[] ())
          with
          Store.Manifest.m_status = Store.Manifest.Done;
          m_metrics =
            Some
              { Store.Manifest.mm_states_per_sec = 12345.5;
                mm_peak_frontier = 678;
                mm_barrier_idle_pct = 3.25 };
          m_shrink =
            Some
              { Store.Manifest.ms_original = 54;
                ms_minimized = 12;
                ms_trace = Some "minimized.trace" };
          m_profile =
            Some
              { Store.Manifest.mp_dup_top_source = Some "deliver n1>n2";
                mp_peak_worker_skew_pct = 7.5 }
        }
      in
      Store.Manifest.save ~dir m;
      match Store.Manifest.load ~dir with
      | Error e -> Alcotest.failf "reload failed: %s" e
      | Ok m' ->
        Alcotest.(check int) "version" Store.Manifest.version
          m'.Store.Manifest.m_version;
        (match m'.Store.Manifest.m_metrics with
        | None -> Alcotest.fail "metrics lost on roundtrip"
        | Some mm ->
          Alcotest.(check (float 1e-9)) "states_per_sec" 12345.5
            mm.Store.Manifest.mm_states_per_sec;
          Alcotest.(check int) "peak_frontier" 678
            mm.Store.Manifest.mm_peak_frontier;
          Alcotest.(check (float 1e-9)) "barrier_idle_pct" 3.25
            mm.Store.Manifest.mm_barrier_idle_pct);
        (match m'.Store.Manifest.m_shrink with
        | None -> Alcotest.fail "shrink summary lost on roundtrip"
        | Some s ->
          Alcotest.(check int) "shrink original" 54
            s.Store.Manifest.ms_original;
          Alcotest.(check int) "shrink minimized" 12
            s.Store.Manifest.ms_minimized;
          Alcotest.(check (option string)) "shrink trace"
            (Some "minimized.trace") s.Store.Manifest.ms_trace);
        match m'.Store.Manifest.m_profile with
        | None -> Alcotest.fail "profile summary lost on roundtrip"
        | Some p ->
          Alcotest.(check (option string)) "dup top source"
            (Some "deliver n1>n2") p.Store.Manifest.mp_dup_top_source;
          Alcotest.(check (float 1e-9)) "peak worker skew" 7.5
            p.Store.Manifest.mp_peak_worker_skew_pct)

(* ---- telemetry: layer-aligned fields deterministic across -j ---------- *)

let sample_fields r =
  let num name =
    match Option.bind (Store.Sjson.member name r) Store.Sjson.to_int with
    | Some n -> n
    | None -> Alcotest.failf "sample missing %s" name
  in
  ( num "layer",
    num "depth",
    num "distinct",
    num "generated",
    num "frontier",
    num "fault_phase" )

let telemetry_samples dir =
  match Obs.Events.read_all (Filename.concat dir Obs.Telemetry.file) with
  | Error m -> Alcotest.failf "telemetry unreadable: %s" m
  | Ok records ->
    List.filter
      (fun r ->
        Option.bind (Store.Sjson.member "type" r) Store.Sjson.to_str
        = Some "sample")
      records

let test_telemetry_layer_aligned () =
  (* the counts a sample carries at each layer barrier are facts about the
     exploration, not the schedule: identical at every worker count (the
     rates, GC and per-worker split around them are diagnostic only) *)
  let runs =
    List.map
      (fun j ->
        with_tmpdir (fun dir ->
            let _ = check_with_workers ~dir j in
            (j, List.map sample_fields (telemetry_samples dir))))
      [ 1; 2; 4 ]
  in
  let _, base = List.hd runs in
  Alcotest.(check bool) "samples recorded" true (base <> []);
  List.iter
    (fun (j, fields) ->
      Alcotest.(check int)
        (Fmt.str "j%d sample count" j)
        (List.length base) (List.length fields);
      List.iter2
        (fun (l1, d1, di1, g1, f1, p1) (l2, d2, di2, g2, f2, p2) ->
          Alcotest.(check (list int))
            (Fmt.str "j%d layer-aligned fields" j)
            [ l1; d1; di1; g1; f1; p1 ]
            [ l2; d2; di2; g2; f2; p2 ])
        base fields)
    (List.tl runs)

(* ---- profile: duplicates reconcile with generated − distinct ---------- *)

let reconcile label (r : Explorer.result) (p : Obs.Profile.summary) =
  Alcotest.(check int)
    (label ^ ": generated agrees")
    r.Explorer.generated p.Obs.Profile.p_generated;
  Alcotest.(check int)
    (label ^ ": distinct agrees")
    r.Explorer.distinct p.Obs.Profile.p_distinct;
  Alcotest.(check int)
    (label ^ ": distinct = roots + generated − duplicates")
    (p.Obs.Profile.p_roots + p.Obs.Profile.p_generated
    - p.Obs.Profile.p_duplicates)
    p.Obs.Profile.p_distinct;
  let sum f rows = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Alcotest.(check int)
    (label ^ ": per-depth generated sums")
    p.Obs.Profile.p_generated
    (sum (fun (d : Obs.Profile.depth_row) -> d.pd_generated)
       p.Obs.Profile.p_by_depth);
  Alcotest.(check int)
    (label ^ ": per-depth duplicates sum")
    p.Obs.Profile.p_duplicates
    (sum (fun (d : Obs.Profile.depth_row) -> d.pd_duplicates)
       p.Obs.Profile.p_by_depth);
  Alcotest.(check int)
    (label ^ ": per-event expansions sum to generated")
    p.Obs.Profile.p_generated
    (sum (fun (e : Obs.Profile.event_row) -> e.pe_expansions)
       p.Obs.Profile.p_by_event);
  Alcotest.(check int)
    (label ^ ": per-event duplicates sum")
    p.Obs.Profile.p_duplicates
    (sum (fun (e : Obs.Profile.event_row) -> e.pe_duplicates)
       p.Obs.Profile.p_by_event)

let test_profile_reconciles_and_roundtrips () =
  List.iter
    (fun j ->
      with_tmpdir (fun dir ->
          let result, summary = check_with_workers ~dir j in
          let p = summary.Obs.Run.s_profile in
          reconcile (Fmt.str "j%d" j) result p;
          (* identical shape at every worker count *)
          let p1 =
            let r1, s1 = check_with_workers 1 in
            reconcile "seq" r1 s1.Obs.Run.s_profile;
            s1.Obs.Run.s_profile
          in
          Alcotest.(check int) (Fmt.str "j%d duplicates match seq" j)
            p1.Obs.Profile.p_duplicates p.Obs.Profile.p_duplicates;
          (* expansion attribution is a fact about the state graph (every
             generated edge has a fixed parent event), so it is identical
             at any worker count; which same-layer generator of a shared
             fingerprint gets counted as the duplicate is schedule-
             dependent, so per-event duplicate splits are compared only in
             total *)
          Alcotest.(check bool)
            (Fmt.str "j%d expansion attribution matches seq" j)
            true
            (List.map
               (fun (e : Obs.Profile.event_row) -> (e.pe_key, e.pe_expansions))
               p1.Obs.Profile.p_by_event
            = List.map
                (fun (e : Obs.Profile.event_row) ->
                  (e.pe_key, e.pe_expansions))
                p.Obs.Profile.p_by_event);
          (* finish wrote profile.json; it reloads to the same summary *)
          match Obs.Profile.load ~dir with
          | Error m -> Alcotest.failf "profile.json unreadable: %s" m
          | Ok p' ->
            Alcotest.(check int) "roundtrip distinct"
              p.Obs.Profile.p_distinct p'.Obs.Profile.p_distinct;
            Alcotest.(check (option string)) "roundtrip top source"
              p.Obs.Profile.p_dup_top_source p'.Obs.Profile.p_dup_top_source))
    [ 1; 4 ]

let test_profile_reconciles_all_systems () =
  (* the identity is structural — it must hold on every integrated system,
     including budget-capped runs that stop mid-layer *)
  List.iter
    (fun (sys : Systems.Registry.t) ->
      let spec = sys.spec Systems.Bug.Flags.empty in
      let obs = Obs.Run.create ~workers:1 () in
      let opts =
        { Explorer.default with
          max_states = Some 2000;
          probe = Obs.Run.probe obs }
      in
      let result = Explorer.check spec sys.default_scenario opts in
      let summary =
        Obs.Run.finish obs ~outcome:"test" ~distinct:result.distinct
          ~generated:result.generated ~max_depth:result.max_depth
          ~duration:result.duration ()
      in
      reconcile sys.name result summary.Obs.Run.s_profile)
    Systems.Registry.all

(* ---- events: trailing partial line tolerated, interior corruption not - *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let has_infix hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  nl = 0 || go 0

let test_events_torn_tail () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "events.ndjsonl" in
      write_file path
        "{\"type\":\"layer\",\"depth\":1}\n{\"type\":\"layer\",\"depth\":2}\n{\"type\":\"lay";
      (match Obs.Events.read_all path with
      | Ok records ->
        Alcotest.(check int) "torn tail: completed records kept" 2
          (List.length records)
      | Error m -> Alcotest.failf "torn tail rejected: %s" m);
      (* corruption with records after it is not a torn tail *)
      write_file path
        "{\"type\":\"layer\",\"depth\":1}\n{oops\n{\"type\":\"layer\",\"depth\":2}\n";
      match Obs.Events.read_all path with
      | Ok _ -> Alcotest.fail "interior corruption accepted"
      | Error m ->
        Alcotest.(check bool) "error cites the line" true (has_infix m ":2:"))

(* ---- progress cadence parsing and ETA --------------------------------- *)

let test_progress_cadence () =
  (match Obs.Progress.parse_cadence "0" with
  | Ok Obs.Progress.Never -> ()
  | _ -> Alcotest.fail "\"0\" should disable");
  (match Obs.Progress.parse_cadence "5000" with
  | Ok (Obs.Progress.Every_states 5000) -> ()
  | _ -> Alcotest.fail "\"5000\" should be a state count");
  (match Obs.Progress.parse_cadence "2s" with
  | Ok (Obs.Progress.Every_seconds 2.) -> ()
  | _ -> Alcotest.fail "\"2s\" should be a duration");
  (match Obs.Progress.parse_cadence "0.5s" with
  | Ok (Obs.Progress.Every_seconds 0.5) -> ()
  | _ -> Alcotest.fail "\"0.5s\" should be a duration");
  (match Obs.Progress.parse_cadence "2x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "\"2x\" should be rejected");
  let line =
    Obs.Progress.line ~label:"check[t]" ~unit_name:"distinct" ~count:250
      ~total:1000 ~elapsed:1.0 ()
  in
  Alcotest.(check bool) "percent rendered" true
    (has_infix line "25% of 1000");
  Alcotest.(check bool) "ETA rendered" true
    (has_infix line "ETA 3s");
  let bare =
    Obs.Progress.line ~label:"check[t]" ~unit_name:"distinct" ~count:250
      ~elapsed:1.0 ()
  in
  Alcotest.(check bool) "no total, no ETA" false
    (has_infix bare "ETA")

(* ---- probe off = same exploration ------------------------------------- *)

let test_probe_off_same_result () =
  let bare = Explorer.check spec scenario Explorer.default in
  let observed, _ = check_with_workers 1 in
  Alcotest.(check int) "distinct" bare.Explorer.distinct
    observed.Explorer.distinct;
  Alcotest.(check int) "generated" bare.Explorer.generated
    observed.Explorer.generated;
  Alcotest.(check int) "max_depth" bare.Explorer.max_depth
    observed.Explorer.max_depth

let suite =
  ( "obs",
    [ case "metric merge is deterministic across -j" test_merge_determinism;
      case "distinct + fp.dup = generated" test_dup_counter_accounts_for_generated;
      case "trace file is valid JSON with nested spans"
        test_trace_valid_and_nested;
      case "events.ndjsonl matches explorer counters" test_events_match_result;
      case "telemetry layer fields deterministic across -j"
        test_telemetry_layer_aligned;
      case "profile reconciles and roundtrips"
        test_profile_reconciles_and_roundtrips;
      case "profile reconciles on every system"
        test_profile_reconciles_all_systems;
      case "events tolerate a torn tail" test_events_torn_tail;
      case "progress cadence parsing and ETA" test_progress_cadence;
      case "stats tolerates v1 run dirs" test_stats_on_v1_run_dir;
      case "manifest metrics+shrink roundtrip" test_manifest_v3_roundtrip;
      case "probe changes nothing about exploration"
        test_probe_off_same_result ] )
