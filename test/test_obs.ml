(* lib/obs: metric merge determinism across worker counts, Chrome
   trace-event output validity and per-tid span nesting, events.ndjsonl
   agreement with explorer counters, stats-reader tolerance of v1 run
   directories, manifest v2 metrics roundtrip. *)

open Sandtable

let case name f = Alcotest.test_case name `Quick f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let dir = Filename.temp_file "sandtable-obs" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let spec = Toy_spec.spec ()
let scenario = Toy_spec.scenario ~nodes:2 ~timeouts:4

(* Counters whose split (not sum) is scheduling-dependent: two domains can
   race the symmetry permutation cache and both record a miss. Everything
   else must be exactly reproducible at any worker count. *)
let racy = [ "symmetry.perm_cache_hits"; "symmetry.perm_cache_misses" ]

let check_with_workers ?dir ?trace_out workers =
  let obs = Obs.Run.create ~workers ?dir ?trace_out () in
  let opts = { Explorer.default with probe = Obs.Run.probe obs } in
  let result =
    if workers = 1 then Explorer.check spec scenario opts
    else (Par.Par_explorer.check ~workers spec scenario opts).base
  in
  let summary =
    Obs.Run.finish obs ~outcome:"exhausted" ~distinct:result.distinct
      ~generated:result.generated ~max_depth:result.max_depth
      ~duration:result.duration ()
  in
  (result, summary)

(* ---- metrics: deterministic across -j --------------------------------- *)

let test_merge_determinism () =
  let runs =
    List.map
      (fun j ->
        let result, summary = check_with_workers j in
        (j, result, summary))
      [ 1; 2; 4 ]
  in
  let _, r1, s1 = List.hd runs in
  let stable (s : Obs.Run.summary) =
    List.filter
      (fun (name, _) -> not (List.mem name racy))
      s.s_metrics.Obs.Metrics.s_counters
  in
  List.iter
    (fun (j, r, s) ->
      Alcotest.(check int) (Fmt.str "j%d distinct" j) r1.Explorer.distinct
        r.Explorer.distinct;
      Alcotest.(check int) (Fmt.str "j%d generated" j) r1.Explorer.generated
        r.Explorer.generated;
      Alcotest.(check int)
        (Fmt.str "j%d peak frontier" j)
        s1.Obs.Run.s_peak_frontier s.Obs.Run.s_peak_frontier;
      Alcotest.(check int) (Fmt.str "j%d layers" j) s1.Obs.Run.s_layers
        s.Obs.Run.s_layers;
      Alcotest.(check (list (pair string int)))
        (Fmt.str "j%d counters" j)
        (stable s1) (stable s))
    (List.tl runs)

let test_dup_counter_accounts_for_generated () =
  (* on an exhaustive run every generated state is either a distinct
     insertion or a duplicate hit, at any worker count; distinct also
     counts the one root state, which is discovered rather than generated *)
  let roots = 1 in
  List.iter
    (fun j ->
      let result, summary = check_with_workers j in
      let dups = Obs.Metrics.counter summary.Obs.Run.s_metrics "fp.dup" in
      Alcotest.(check int)
        (Fmt.str "j%d distinct + dups = generated + roots" j)
        (result.Explorer.generated + roots)
        (result.Explorer.distinct + dups))
    [ 1; 3 ]

(* ---- trace: valid JSON, spans nest per tid ---------------------------- *)

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_trace_valid_and_nested () =
  with_tmpdir (fun dir ->
      let trace_out = Filename.concat dir "trace.json" in
      let _ = check_with_workers ~trace_out 4 in
      let json =
        match Store.Sjson.of_string (read_whole trace_out) with
        | Ok j -> j
        | Error m -> Alcotest.failf "trace is not valid JSON: %s" m
      in
      let events =
        match
          Option.bind (Store.Sjson.member "traceEvents" json)
            Store.Sjson.to_list
        with
        | Some l -> l
        | None -> Alcotest.fail "trace has no traceEvents array"
      in
      Alcotest.(check bool) "has events" true (List.length events > 0);
      let str j name =
        Option.bind (Store.Sjson.member name j) Store.Sjson.to_str
      in
      let num j name =
        Option.bind (Store.Sjson.member name j) Store.Sjson.to_num
      in
      let spans =
        List.filter_map
          (fun e ->
            if str e "ph" = Some "X" then
              match (num e "tid", num e "ts", num e "dur") with
              | Some tid, Some ts, Some dur ->
                Alcotest.(check bool) "ts >= 0" true (ts >= 0.);
                Alcotest.(check bool) "dur >= 0" true (dur >= 0.);
                Some (int_of_float tid, ts, dur)
              | _ -> Alcotest.fail "X event missing tid/ts/dur"
            else begin
              (* only metadata events besides complete spans *)
              Alcotest.(check (option string)) "meta" (Some "M") (str e "ph");
              None
            end)
          events
      in
      let tids = List.sort_uniq compare (List.map (fun (t, _, _) -> t) spans) in
      Alcotest.(check (list int)) "one lane per worker" [ 0; 1; 2; 3 ] tids;
      (* within a tid, spans sorted by start either nest or are disjoint
         (sub-10µs fuzz tolerated: endpoints come from separate
         gettimeofday calls) *)
      let fuzz = 10. in
      List.iter
        (fun tid ->
          let mine =
            List.sort compare
              (List.filter_map
                 (fun (t, ts, dur) -> if t = tid then Some (ts, dur) else None)
                 spans)
          in
          ignore
            (List.fold_left
               (fun prev (ts, dur) ->
                 (match prev with
                 | Some (pts, pdur) ->
                   let disjoint = ts >= pts +. pdur -. fuzz in
                   let nested = ts +. dur <= pts +. pdur +. fuzz in
                   Alcotest.(check bool)
                     (Fmt.str "tid %d span at %f overlaps predecessor" tid ts)
                     true (disjoint || nested)
                 | None -> ());
                 Some (ts, dur))
               None mine))
        tids)

(* ---- events.ndjsonl vs explorer counters ------------------------------ *)

let test_events_match_result () =
  with_tmpdir (fun dir ->
      let result, summary = check_with_workers ~dir 1 in
      let records =
        match Obs.Events.read_all (Filename.concat dir Obs.Events.file) with
        | Ok r -> r
        | Error m -> Alcotest.failf "events unreadable: %s" m
      in
      let typ r =
        Option.bind (Store.Sjson.member "type" r) Store.Sjson.to_str
      in
      let int_field r name =
        match Option.bind (Store.Sjson.member name r) Store.Sjson.to_int with
        | Some n -> n
        | None -> Alcotest.failf "record missing %s" name
      in
      let layers = List.filter (fun r -> typ r = Some "layer") records in
      Alcotest.(check int) "layer records" summary.Obs.Run.s_layers
        (List.length layers);
      let last = List.nth layers (List.length layers - 1) in
      Alcotest.(check int) "final distinct" result.Explorer.distinct
        (int_field last "distinct");
      Alcotest.(check int) "final generated" result.Explorer.generated
        (int_field last "generated");
      Alcotest.(check int) "final frontier empty" 0 (int_field last "frontier");
      (match List.filter (fun r -> typ r = Some "done") records with
      | [ d ] ->
        Alcotest.(check int) "done distinct" result.Explorer.distinct
          (int_field d "distinct");
        Alcotest.(check int) "done max_depth" result.Explorer.max_depth
          (int_field d "max_depth")
      | l -> Alcotest.failf "expected one done record, found %d" (List.length l));
      (* metrics.json landed too *)
      Alcotest.(check bool) "metrics.json written" true
        (Sys.file_exists (Filename.concat dir Obs.Run.metrics_file)))

(* ---- stats reader on a v1 (pre-observability) run dir ----------------- *)

let v1_manifest =
  {|{
  "version": 1,
  "system": "toy",
  "scenario": "toy-2n",
  "identity": "deadbeef0123",
  "created": "2025-01-01T00:00:00Z",
  "engine": "seq",
  "workers": 1,
  "flags": {},
  "status": "done",
  "outcome": "exhausted",
  "distinct": 42,
  "generated": 99,
  "max_depth": 7,
  "duration_s": 0.5,
  "checkpoints": 0,
  "checkpoint": null,
  "trace": null
}|}

let test_stats_on_v1_run_dir () =
  with_tmpdir (fun dir ->
      let oc = open_out (Filename.concat dir Store.Manifest.file) in
      output_string oc v1_manifest;
      close_out oc;
      let report =
        match Obs.Report.load dir with
        | Ok r -> r
        | Error m -> Alcotest.failf "stats refused v1 run dir: %s" m
      in
      (match report.Obs.Report.rp_manifest with
      | Some (Ok m) ->
        Alcotest.(check int) "v1 version kept" 1 m.Store.Manifest.m_version;
        Alcotest.(check int) "v1 distinct" 42 m.Store.Manifest.m_distinct;
        Alcotest.(check bool) "v1 has no metrics" true
          (m.Store.Manifest.m_metrics = None)
      | _ -> Alcotest.fail "v1 manifest did not load");
      Alcotest.(check bool) "no metrics.json" true
        (report.Obs.Report.rp_metrics = None);
      (* rendering must not raise *)
      let rendered = Fmt.str "%a" Obs.Report.pp report in
      Alcotest.(check bool) "render mentions missing metrics" true
        (String.length rendered > 0))

(* ---- manifest metrics+shrink roundtrip -------------------------------------------- *)

let test_manifest_v3_roundtrip () =
  with_tmpdir (fun dir ->
      let m =
        { (Store.Manifest.make ~system:"toy" ~scenario:"toy-2n"
             ~identity:"cafebabe" ~engine:"par" ~workers:4 ~flags:[])
          with
          Store.Manifest.m_status = Store.Manifest.Done;
          m_metrics =
            Some
              { Store.Manifest.mm_states_per_sec = 12345.5;
                mm_peak_frontier = 678;
                mm_barrier_idle_pct = 3.25 };
          m_shrink =
            Some
              { Store.Manifest.ms_original = 54;
                ms_minimized = 12;
                ms_trace = Some "minimized.trace" }
        }
      in
      Store.Manifest.save ~dir m;
      match Store.Manifest.load ~dir with
      | Error e -> Alcotest.failf "reload failed: %s" e
      | Ok m' ->
        Alcotest.(check int) "version" Store.Manifest.version
          m'.Store.Manifest.m_version;
        (match m'.Store.Manifest.m_metrics with
        | None -> Alcotest.fail "metrics lost on roundtrip"
        | Some mm ->
          Alcotest.(check (float 1e-9)) "states_per_sec" 12345.5
            mm.Store.Manifest.mm_states_per_sec;
          Alcotest.(check int) "peak_frontier" 678
            mm.Store.Manifest.mm_peak_frontier;
          Alcotest.(check (float 1e-9)) "barrier_idle_pct" 3.25
            mm.Store.Manifest.mm_barrier_idle_pct);
        match m'.Store.Manifest.m_shrink with
        | None -> Alcotest.fail "shrink summary lost on roundtrip"
        | Some s ->
          Alcotest.(check int) "shrink original" 54
            s.Store.Manifest.ms_original;
          Alcotest.(check int) "shrink minimized" 12
            s.Store.Manifest.ms_minimized;
          Alcotest.(check (option string)) "shrink trace"
            (Some "minimized.trace") s.Store.Manifest.ms_trace)

(* ---- probe off = same exploration ------------------------------------- *)

let test_probe_off_same_result () =
  let bare = Explorer.check spec scenario Explorer.default in
  let observed, _ = check_with_workers 1 in
  Alcotest.(check int) "distinct" bare.Explorer.distinct
    observed.Explorer.distinct;
  Alcotest.(check int) "generated" bare.Explorer.generated
    observed.Explorer.generated;
  Alcotest.(check int) "max_depth" bare.Explorer.max_depth
    observed.Explorer.max_depth

let suite =
  ( "obs",
    [ case "metric merge is deterministic across -j" test_merge_determinism;
      case "distinct + fp.dup = generated" test_dup_counter_accounts_for_generated;
      case "trace file is valid JSON with nested spans"
        test_trace_valid_and_nested;
      case "events.ndjsonl matches explorer counters" test_events_match_result;
      case "stats tolerates v1 run dirs" test_stats_on_v1_run_dir;
      case "manifest metrics+shrink roundtrip" test_manifest_v3_roundtrip;
      case "probe changes nothing about exploration"
        test_probe_off_same_result ] )
