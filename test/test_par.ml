(* Equivalence of the parallel engine (lib/par) with the sequential one:
   same distinct/generated/max_depth counters, same outcome, same violation
   depth and trace, at every worker count — plus determinism of parallel
   simulation and the shard-set / pool primitives they build on. *)

open Sandtable

let case name f = Alcotest.test_case name `Quick f
let worker_counts = [ 1; 2; 4 ]

let counters (r : Explorer.result) = r.distinct, r.generated, r.max_depth

let check_counters label seq (par : Par.Par_explorer.result) =
  Alcotest.(check (triple int int int)) label (counters seq) (counters par.base)

let test_toy_exhaustive_equivalence () =
  let scenario = Toy_spec.scenario ~nodes:2 ~timeouts:4 in
  let spec = Toy_spec.spec () in
  List.iter
    (fun symmetry ->
      let opts = { Explorer.default with symmetry } in
      let seq = Explorer.check spec scenario opts in
      List.iter
        (fun workers ->
          let par = Par.Par_explorer.check ~workers spec scenario opts in
          (match par.base.outcome with
          | Explorer.Exhausted -> ()
          | _ -> Alcotest.fail "parallel run should exhaust");
          check_counters
            (Fmt.str "counters sym=%b workers=%d" symmetry workers)
            seq par)
        worker_counts)
    [ false; true ]

let test_toy_violation_equivalence () =
  let scenario = Toy_spec.scenario ~nodes:3 ~timeouts:6 in
  let spec = Toy_spec.spec ~limit:3 () in
  let seq = Explorer.check spec scenario Explorer.default in
  let sv =
    match seq.outcome with
    | Explorer.Violation v -> v
    | _ -> Alcotest.fail "sequential run must violate"
  in
  List.iter
    (fun workers ->
      let par =
        Par.Par_explorer.check ~workers spec scenario Explorer.default
      in
      match par.base.outcome with
      | Explorer.Violation pv ->
        let l = Fmt.str "workers=%d" workers in
        Alcotest.(check string) (l ^ " invariant") sv.invariant pv.invariant;
        Alcotest.(check int) (l ^ " depth") sv.depth pv.depth;
        Alcotest.(check string) (l ^ " state") sv.state_repr pv.state_repr;
        Alcotest.(check bool) (l ^ " trace") true
          (List.length sv.events = List.length pv.events
          && List.for_all2 Trace.equal_event sv.events pv.events);
        check_counters (l ^ " counters") seq par
      | _ -> Alcotest.fail "parallel run must violate")
    worker_counts

let test_toy_deadlock_equivalence () =
  let scenario = Toy_spec.scenario ~nodes:1 ~timeouts:2 in
  let opts = { Explorer.default with check_deadlock = true } in
  let seq = Explorer.check (Toy_spec.spec ()) scenario opts in
  List.iter
    (fun workers ->
      let par =
        Par.Par_explorer.check ~workers (Toy_spec.spec ()) scenario opts
      in
      match seq.outcome, par.base.outcome with
      | Explorer.Deadlock se, Explorer.Deadlock pe ->
        Alcotest.(check int)
          (Fmt.str "deadlock trace workers=%d" workers)
          (List.length se) (List.length pe);
        check_counters (Fmt.str "counters workers=%d" workers) seq par
      | _ -> Alcotest.fail "both runs must deadlock")
    worker_counts

let test_toy_depth_budget_equivalence () =
  (* max_depth stops at a layer boundary in both engines, so even the
     budget-stop counters must agree exactly *)
  let scenario = Toy_spec.scenario ~nodes:2 ~timeouts:20 in
  let opts =
    { Explorer.default with max_depth = Some 3; symmetry = false }
  in
  let seq = Explorer.check (Toy_spec.spec ()) scenario opts in
  List.iter
    (fun workers ->
      let par =
        Par.Par_explorer.check ~workers (Toy_spec.spec ()) scenario opts
      in
      (match par.base.outcome with
      | Explorer.Budget_spent -> ()
      | _ -> Alcotest.fail "expected budget stop");
      check_counters (Fmt.str "counters workers=%d" workers) seq par)
    worker_counts

let test_buggy_system_equivalence () =
  (* a real registry system with an injected protocol bug: the parallel
     engine must find the same minimal-depth violation with the same
     sequential-equivalent counters *)
  let module R = Systems.Registry in
  let sys = R.find "raftos" in
  let info =
    List.find (fun (b : Systems.Bug.info) -> b.flags = [ "raftos1" ]) sys.bugs
  in
  let spec = sys.spec (Systems.Bug.flags info.flags) in
  let opts =
    { Explorer.default with
      only_invariants = Some [ "MatchIndexMonotonic" ];
      time_budget = Some 120. }
  in
  let seq = Explorer.check spec info.scenario opts in
  let sv =
    match seq.outcome with
    | Explorer.Violation v -> v
    | _ -> Alcotest.fail "sequential run must violate"
  in
  List.iter
    (fun workers ->
      let par = Par.Par_explorer.check ~workers spec info.scenario opts in
      match par.base.outcome with
      | Explorer.Violation pv ->
        let l = Fmt.str "workers=%d" workers in
        Alcotest.(check string) (l ^ " invariant") sv.invariant pv.invariant;
        Alcotest.(check int) (l ^ " depth") sv.depth pv.depth;
        Alcotest.(check bool) (l ^ " trace") true
          (List.length sv.events = List.length pv.events
          && List.for_all2 Trace.equal_event sv.events pv.events);
        check_counters (l ^ " counters") seq par
      | _ -> Alcotest.fail "parallel run must violate")
    worker_counts

let trace_bytes events =
  let b = Binio.sink () in
  List.iter (Trace.encode_event b) events;
  Binio.contents b

let test_registry_sweep_equivalence () =
  (* every integrated system, clean spec, shallow layer-aligned budget:
     the two engines must agree exactly on (distinct, generated, max_depth)
     at every worker count. max_depth stops at a layer boundary, so even
     these budget-stopped counters are deterministic. *)
  let module R = Systems.Registry in
  List.iter
    (fun (sys : R.t) ->
      let spec = sys.spec (Systems.Bug.flags []) in
      let opts = { Explorer.default with max_depth = Some 2 } in
      let seq = Explorer.check spec sys.table3_scenario opts in
      Alcotest.(check bool)
        (sys.name ^ " explores something") true (seq.generated > 0);
      List.iter
        (fun workers ->
          let par =
            Par.Par_explorer.check ~workers spec sys.table3_scenario opts
          in
          check_counters (Fmt.str "%s workers=%d" sys.name workers) seq par)
        worker_counts)
    R.all

let test_violation_trace_bytes_equal () =
  (* the counterexample must agree down to its serialized bytes — the
     strongest cross-engine equivalence we can assert, and what replay
     scripts and the shrinker consume *)
  let module R = Systems.Registry in
  let sys = R.find "daosraft" in
  let info =
    List.find (fun (b : Systems.Bug.info) -> b.flags = [ "daos1" ]) sys.bugs
  in
  let spec = sys.spec (Systems.Bug.flags info.flags) in
  let opts = { Explorer.default with time_budget = Some 120. } in
  let seq = Explorer.check spec info.scenario opts in
  let sv =
    match seq.outcome with
    | Explorer.Violation v -> v
    | _ -> Alcotest.fail "sequential run must violate"
  in
  List.iter
    (fun workers ->
      let par = Par.Par_explorer.check ~workers spec info.scenario opts in
      match par.base.outcome with
      | Explorer.Violation pv ->
        Alcotest.(check string)
          (Fmt.str "trace bytes workers=%d" workers)
          (Digest.to_hex (Digest.string (trace_bytes sv.events)))
          (Digest.to_hex (Digest.string (trace_bytes pv.events)));
        check_counters (Fmt.str "counters workers=%d" workers) seq par
      | _ -> Alcotest.fail "parallel run must violate")
    worker_counts

let test_symmetry_collision_provenance () =
  (* regression: under symmetry reduction, distinct concrete states collide
     on one canonical fingerprint within a layer; the frontier must carry
     the variant whose provenance the table kept (the minimal-pos one) or
     violation replay crashes ("unreplayable provenance chain") / reports a
     variant the sequential engine would not. The race only opens at >= 2
     workers, so repeat the run to widen its window. *)
  let scenario = Toy_spec.scenario ~nodes:4 ~timeouts:10 in
  let spec = Toy_spec.spec ~limit:5 () in
  let opts = { Explorer.default with symmetry = true } in
  let seq = Explorer.check spec scenario opts in
  let sv =
    match seq.outcome with
    | Explorer.Violation v -> v
    | _ -> Alcotest.fail "sequential run must violate"
  in
  for round = 1 to 10 do
    List.iter
      (fun workers ->
        let par = Par.Par_explorer.check ~workers spec scenario opts in
        match par.base.outcome with
        | Explorer.Violation pv ->
          let l = Fmt.str "round %d workers=%d" round workers in
          Alcotest.(check string) (l ^ " state") sv.state_repr pv.state_repr;
          Alcotest.(check bool) (l ^ " trace") true
            (List.length sv.events = List.length pv.events
            && List.for_all2 Trace.equal_event sv.events pv.events);
          check_counters (l ^ " counters") seq par
        | _ -> Alcotest.fail "parallel run must violate")
      [ 2; 4 ]
  done

let test_simulate_seed_stable () =
  let scenario = Toy_spec.scenario ~nodes:2 ~timeouts:8 in
  let spec = Toy_spec.spec ~limit:6 () in
  let opts = { Simulate.default with max_depth = 12 } in
  let run workers =
    Par.Par_simulate.walks ~workers spec scenario opts ~seed:42 ~count:40
  in
  let reference = run 1 in
  Alcotest.(check int) "count" 40 (List.length reference);
  List.iter
    (fun workers ->
      let ws = run workers in
      List.iteri
        (fun i (a, b) ->
          let a : Simulate.walk = a and b : Simulate.walk = b in
          Alcotest.(check bool)
            (Fmt.str "walk %d identical at %d workers" i workers)
            true
            (List.length a.events = List.length b.events
            && List.for_all2 Trace.equal_event a.events b.events
            && a.violation = b.violation
            && a.deadlocked = b.deadlocked))
        (List.combine reference ws))
    [ 2; 4 ];
  (* a different root seed must give different walks *)
  let other =
    Par.Par_simulate.walks ~workers:1 spec scenario opts ~seed:7 ~count:40
  in
  Alcotest.(check bool) "seed matters" true
    (List.exists2
       (fun (a : Simulate.walk) (b : Simulate.walk) ->
         List.length a.events <> List.length b.events
         || not (List.for_all2 Trace.equal_event a.events b.events))
       reference other)

let test_simulate_aggregate_matches () =
  (* parallel walks feed the same aggregation pipeline *)
  let scenario = Toy_spec.scenario ~nodes:2 ~timeouts:5 in
  let spec = Toy_spec.spec () in
  let ws =
    Par.Par_simulate.walks ~workers:4 spec scenario Simulate.default ~seed:5
      ~count:10
  in
  let agg = Simulate.aggregate ws in
  Alcotest.(check int) "runs" 10 agg.runs;
  Alcotest.(check int) "both tick branches covered" 2
    (Coverage.cardinal agg.union_coverage)

let test_shard_set_concurrent () =
  let set : int Par.Shard_set.t = Par.Shard_set.create ~shards:8 () in
  let fps = Array.init 500 (fun i -> Fingerprint.of_state (i mod 250)) in
  Par.Pool.with_pool 4 (fun pool ->
      Par.Pool.run pool (fun w ->
          Array.iteri
            (fun i fp ->
              if i mod 4 = w then
                ignore
                  (Par.Shard_set.add_seed set fp (Par.Shard_set.Proot i)
                     ~depth:0))
            fps));
  Alcotest.(check int) "distinct" 250 (Par.Shard_set.length set);
  let stats = Par.Shard_set.stats set in
  Alcotest.(check int) "shards" 8 (Array.length stats);
  let entries =
    Array.fold_left (fun n (s : Par.Shard_set.stat) -> n + s.s_entries) 0 stats
  in
  Alcotest.(check int) "stat entries" 250 entries;
  (* every fingerprint is present and kept its first-inserted provenance *)
  Array.iter
    (fun fp -> Alcotest.(check bool) "mem" true (Par.Shard_set.mem set fp))
    fps

let test_shard_set_merge_keeps_min () =
  let set : string Par.Shard_set.t = Par.Shard_set.create ~shards:4 () in
  let fp = Fingerprint.of_state "x" in
  let parent = Fingerprint.of_state "parent" in
  let step n =
    Par.Shard_set.Pstep (parent, Trace.Timeout { node = n; kind = "t" })
  in
  Alcotest.(check bool) "first insert" true
    (Par.Shard_set.merge set fp ~prov:(step 9) ~depth:2 ~pos:(1, 0)
       ~state:"late"
     = Par.Shard_set.Fresh);
  (* same depth, smaller pos: replaces prov, pos and state together and
     names the displaced edge so the profiler can re-attribute it *)
  (match
     Par.Shard_set.merge set fp ~prov:(step 3) ~depth:2 ~pos:(0, 1)
       ~state:"early"
   with
  | Par.Shard_set.Dup_replaced
      { old_event = Some (Trace.Timeout { node; _ }); old_depth } ->
    Alcotest.(check int) "displaced event" 9 node;
    Alcotest.(check int) "displaced depth" 2 old_depth
  | _ -> Alcotest.fail "expected Dup_replaced naming the displaced edge");
  (* larger pos: existing minimal entry is retained *)
  Alcotest.(check bool) "larger pos ignored" true
    (Par.Shard_set.merge set fp ~prov:(step 7) ~depth:2 ~pos:(0, 2)
       ~state:"later"
     = Par.Shard_set.Dup_kept);
  (match Par.Shard_set.find_prov set fp with
  | Par.Shard_set.Pstep (p, Trace.Timeout { node; _ }) ->
    Alcotest.(check bool) "parent kept" true (Fingerprint.equal p parent);
    Alcotest.(check int) "minimal event kept" 3 node
  | _ -> Alcotest.fail "expected a step provenance");
  Alcotest.(check (pair (pair int int) string))
    "minimal pos and its state kept" ((0, 1), "early")
    (match Par.Shard_set.take_state set fp with
    | Some r -> r
    | None -> Alcotest.fail "state missing");
  Alcotest.(check bool) "state taken at most once" true
    (Par.Shard_set.take_state set fp = None);
  Alcotest.(check (pair int int)) "pos still readable" (0, 1)
    (Par.Shard_set.find_pos set fp)

let test_pool_runs_all_workers () =
  let hits = Array.make 4 0 in
  Par.Pool.with_pool 4 (fun pool ->
      for _ = 1 to 3 do
        Par.Pool.run pool (fun w -> hits.(w) <- hits.(w) + 1)
      done);
  Alcotest.(check (list int)) "every worker ran every job" [ 3; 3; 3; 3 ]
    (Array.to_list hits)

let test_pool_propagates_exceptions () =
  Par.Pool.with_pool 2 (fun pool ->
      match Par.Pool.run pool (fun w -> if w = 1 then failwith "boom") with
      | () -> Alcotest.fail "expected exception"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_fingerprint_closure_error () =
  (match Fingerprint.of_state ~who:"toy-closure-spec" (fun x -> x + 1) with
  | _ -> Alcotest.fail "closures must not fingerprint"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the spec" true
      (contains msg "toy-closure-spec");
    Alcotest.(check bool) "explains the cause" true (contains msg "closure"));
  (* pure data still fingerprints, with or without attribution *)
  Alcotest.(check bool) "pure data ok" true
    (Fingerprint.equal
       (Fingerprint.of_state ~who:"spec" (1, [ "a" ]))
       (Fingerprint.of_state (1, [ "a" ])))

let suite =
  ( "par",
    [ case "toy exhaustive equivalence (1/2/4 workers)"
        test_toy_exhaustive_equivalence;
      case "toy violation equivalence" test_toy_violation_equivalence;
      case "toy deadlock equivalence" test_toy_deadlock_equivalence;
      case "depth budget equivalence" test_toy_depth_budget_equivalence;
      case "buggy registry system equivalence" test_buggy_system_equivalence;
      case "registry-wide sweep equivalence (1/2/4 workers)"
        test_registry_sweep_equivalence;
      case "violation trace bytes identical across engines"
        test_violation_trace_bytes_equal;
      case "symmetry-collision provenance stays replayable"
        test_symmetry_collision_provenance;
      case "simulation is seed-stable across worker counts"
        test_simulate_seed_stable;
      case "parallel walks aggregate like sequential ones"
        test_simulate_aggregate_matches;
      case "shard set under concurrent insertion" test_shard_set_concurrent;
      case "shard set merge keeps minimum" test_shard_set_merge_keeps_min;
      case "pool barrier runs every worker" test_pool_runs_all_workers;
      case "pool propagates worker exceptions" test_pool_propagates_exceptions;
      case "fingerprinting a closure names the spec"
        test_fingerprint_closure_error ] )
