let case name f = Alcotest.test_case name `Quick f

let test_vclock () =
  let c = Engine.Vclock.create () in
  let t1 = Engine.Vclock.read_us c in
  let t2 = Engine.Vclock.read_us c in
  Alcotest.(check bool) "reads are monotonic" true (t2 > t1);
  Engine.Vclock.advance_ms c 5;
  let t3 = Engine.Vclock.peek_us c in
  Alcotest.(check bool) "advance jumps 5ms" true (t3 - t2 = 5000)

let test_wire () =
  let payload = Bytes.of_string "hello" in
  let frame = Engine.Wire.frame payload in
  Alcotest.(check int) "length field" 5 (Engine.Wire.payload_length frame);
  Alcotest.(check string) "roundtrip" "hello"
    (Bytes.to_string (Engine.Wire.unframe frame));
  Alcotest.check_raises "bad magic" (Engine.Wire.Corrupt "bad magic")
    (fun () ->
      let bad = Bytes.copy frame in
      Bytes.set bad 0 'x';
      ignore (Engine.Wire.unframe bad));
  Alcotest.check_raises "short" (Engine.Wire.Corrupt "short frame") (fun () ->
      ignore (Engine.Wire.unframe (Bytes.of_string "ab")))

let test_proxy_tcp () =
  let p = Engine.Proxy.create ~nodes:2 Sandtable.Spec_net.Tcp in
  Alcotest.(check bool) "send" true (Engine.Proxy.send p ~src:0 ~dst:1 (Bytes.of_string "a"));
  Alcotest.(check bool) "send2" true (Engine.Proxy.send p ~src:0 ~dst:1 (Bytes.of_string "b"));
  Alcotest.(check bool) "no index-1 delivery" true
    (Engine.Proxy.deliver p ~src:0 ~dst:1 ~index:1 = None);
  (match Engine.Proxy.deliver p ~src:0 ~dst:1 ~index:0 with
  | Some payload -> Alcotest.(check string) "fifo head" "a" (Bytes.to_string payload)
  | None -> Alcotest.fail "delivery failed");
  Engine.Proxy.partition p ~group:[ 0 ];
  Alcotest.(check bool) "cut" false (Engine.Proxy.connected p 0 1);
  Alcotest.(check int) "queue cleared" 0 (Engine.Proxy.queue_len p ~src:0 ~dst:1);
  Alcotest.(check bool) "send fails" false
    (Engine.Proxy.send p ~src:0 ~dst:1 (Bytes.of_string "c"));
  Engine.Proxy.heal p;
  Alcotest.(check bool) "healed" true (Engine.Proxy.connected p 0 1)

let test_proxy_udp () =
  let p = Engine.Proxy.create ~nodes:2 Sandtable.Spec_net.Udp in
  ignore (Engine.Proxy.send p ~src:0 ~dst:1 (Bytes.of_string "a"));
  ignore (Engine.Proxy.send p ~src:0 ~dst:1 (Bytes.of_string "b"));
  Alcotest.(check bool) "dup" true (Engine.Proxy.duplicate p ~src:0 ~dst:1 ~index:0);
  Alcotest.(check int) "3 frames" 3 (Engine.Proxy.queue_len p ~src:0 ~dst:1);
  Alcotest.(check bool) "drop" true (Engine.Proxy.drop p ~src:0 ~dst:1 ~index:1);
  match Engine.Proxy.deliver p ~src:0 ~dst:1 ~index:1 with
  | Some payload -> Alcotest.(check string) "reordered" "a" (Bytes.to_string payload)
  | None -> Alcotest.fail "udp delivery failed"

let test_log_parser () =
  let lp = Engine.Log_parser.create () in
  Engine.Log_parser.feed lp "boot complete";
  Engine.Log_parser.feed lp "STATE role=follower term=1";
  Engine.Log_parser.feed lp "STATE role=leader term=3 commit=2";
  Alcotest.(check (option string)) "latest role" (Some "leader")
    (Engine.Log_parser.lookup lp "role");
  Alcotest.(check (option int)) "term" (Some 3) (Engine.Log_parser.lookup_int lp "term");
  Alcotest.(check (option int)) "commit" (Some 2)
    (Engine.Log_parser.lookup_int lp "commit");
  Alcotest.(check int) "raw lines kept" 3 (List.length (Engine.Log_parser.lines lp));
  Engine.Log_parser.clear lp;
  Alcotest.(check (option string)) "cleared" None (Engine.Log_parser.lookup lp "role")

let test_cost_model () =
  let profile =
    Engine.Cost.profile ~init_ms:100. ~per_event_ms:10. ~async_sleep_ms:5.
      ~crash_restart_ms:50. ()
  in
  let cost = Engine.Cost.create profile in
  Engine.Cost.start_trace cost;
  Engine.Cost.charge_event cost (Sandtable.Trace.Timeout { node = 0; kind = "x" });
  Engine.Cost.charge_event cost (Sandtable.Trace.Restart { node = 0 });
  (* 100 + (10+5) + (10+5+50) *)
  Alcotest.(check (float 0.01)) "virtual ms" 180. (Engine.Cost.virtual_ms cost);
  Engine.Cost.real_add cost 0.5;
  Alcotest.(check (float 0.01)) "total" 680. (Engine.Cost.total_ms cost)

(* cluster lifecycle with a trivial echo node *)
let echo_boot : Engine.Syscall.boot =
 fun ctx ->
  let received = ref 0 in
  ctx.persist_set "boots"
    (string_of_int
       (1 + Option.value ~default:0
              (Option.bind (ctx.persist_get "boots") int_of_string_opt)));
  { Engine.Syscall.handle_message =
      (fun ~src payload ->
        incr received;
        if Bytes.to_string payload = "boom" then failwith "echo node crash";
        ignore (ctx.send ~dst:src payload));
    on_timeout = (fun ~kind:_ -> ());
    on_client =
      (fun ~op -> ignore (ctx.send ~dst:((ctx.id + 1) mod ctx.nodes) (Bytes.of_string op)));
    observe =
      (fun () ->
        Tla.Value.record
          [ "received", Tla.Value.int !received;
            ( "boots",
              Tla.Value.int
                (Option.value ~default:0
                   (Option.bind (ctx.persist_get "boots") int_of_string_opt)) )
          ]) }

let echo_cluster () =
  Engine.Cluster.create
    { Engine.Cluster.nodes = 2;
      semantics = Sandtable.Spec_net.Tcp;
      timeouts = [ "tick", 10 ];
      clock_skew_ms = [];
      cost = Engine.Cost.profile ();
      boot = echo_boot }

let test_cluster_roundtrip () =
  let c = echo_cluster () in
  (match Engine.Cluster.execute c (Sandtable.Trace.Client { node = 0; op = "ping" }) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "client failed: %a" Engine.Cluster.pp_error e);
  (match
     Engine.Cluster.execute c
       (Sandtable.Trace.Deliver { src = 0; dst = 1; index = 0; desc = "" })
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "delivery failed: %a" Engine.Cluster.pp_error e);
  match Engine.Cluster.observe_node c 1 with
  | Some obs ->
    Alcotest.(check bool) "node 1 received" true
      (Tla.Value.field obs "received" = Some (Tla.Value.int 1))
  | None -> Alcotest.fail "node 1 should be observable"

let test_cluster_not_enabled () =
  let c = echo_cluster () in
  match
    Engine.Cluster.execute c
      (Sandtable.Trace.Deliver { src = 0; dst = 1; index = 0; desc = "" })
  with
  | Error (Engine.Cluster.Not_enabled _) -> ()
  | _ -> Alcotest.fail "empty queue delivery must be rejected"

let test_cluster_crash_restart_persistence () =
  let c = echo_cluster () in
  (match Engine.Cluster.execute c (Sandtable.Trace.Crash { node = 0 }) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "crash failed: %a" Engine.Cluster.pp_error e);
  Alcotest.(check bool) "down" true (Engine.Cluster.observe_node c 0 = None);
  (* crash twice is not enabled *)
  (match Engine.Cluster.execute c (Sandtable.Trace.Crash { node = 0 }) with
  | Error (Engine.Cluster.Not_enabled _) -> ()
  | _ -> Alcotest.fail "double crash");
  (match Engine.Cluster.execute c (Sandtable.Trace.Restart { node = 0 }) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "restart failed: %a" Engine.Cluster.pp_error e);
  match Engine.Cluster.observe_node c 0 with
  | Some obs ->
    (* persistent boot counter survived the crash: booted twice *)
    Alcotest.(check bool) "persistence" true
      (Tla.Value.field obs "boots" = Some (Tla.Value.int 2))
  | None -> Alcotest.fail "restarted node observable"

let test_cluster_impl_crash_captured () =
  let c = echo_cluster () in
  ignore (Engine.Cluster.execute c (Sandtable.Trace.Client { node = 0; op = "boom" }));
  match
    Engine.Cluster.execute c
      (Sandtable.Trace.Deliver { src = 0; dst = 1; index = 0; desc = "" })
  with
  | Error (Engine.Cluster.Impl_crash { node = 1; _ }) ->
    (match Engine.Cluster.status c 1 with
    | Engine.Cluster.Faulted _ -> ()
    | _ -> Alcotest.fail "node should be faulted")
  | _ -> Alcotest.fail "implementation exception must be captured"

let suite =
  ( "engine",
    [ case "virtual clock" test_vclock;
      case "wire framing" test_wire;
      case "proxy tcp" test_proxy_tcp;
      case "proxy udp" test_proxy_udp;
      case "log parser" test_log_parser;
      case "cost model" test_cost_model;
      case "cluster message roundtrip" test_cluster_roundtrip;
      case "cluster not-enabled events" test_cluster_not_enabled;
      case "crash/restart persistence" test_cluster_crash_restart_persistence;
      case "impl exceptions captured" test_cluster_impl_crash_captured ] )
